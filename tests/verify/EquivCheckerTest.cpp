//===- tests/verify/EquivCheckerTest.cpp - Equivalence certification ------===//
//
// Unit tests for verify/EquivChecker.h along both axes the subsystem
// promises:
//
//  * soundness of "certified": intact pipelines certify, and the
//    classifier hash is stable across contexts/processes;
//  * power of "refuted": mutation-injection — corrupting a fast-path
//    table entry, a run-kernel classification, or a bytecode guard
//    in-memory — must each produce a concrete counterexample, never a
//    silent pass;
//  * honesty of "unverified": a zero time budget degrades every state to
//    unverified (and bumps the timeout counter) rather than claiming
//    certification.
//
// The cache-admission gate (EFC_CERTIFY) is covered at the runtime layer
// in tests/runtime/PipelineCacheTest.cpp-style fashion here too, since
// this suite links efc_runtime.
//
//===----------------------------------------------------------------------===//

#include "codegen/CppCodeGen.h"
#include "codegen/NativeCompile.h"
#include "runtime/PipelineCache.h"
#include "verify/EquivChecker.h"
#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace efc;
using namespace efc::verify;

namespace {

/// 2 states over bv(8): state 0 echoes input; 'a' jumps to state 1, every
/// other byte self-loops (a Copy run kernel with single escape 'a').
/// State 1 counts bytes in the register and emits the count at the end.
Bst makeEchoSwitch(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 2, 0, Value::bv(8, 0));
  TermRef X = A.inputVar(), R = A.regVar();
  A.setDelta(0, Rule::ite(Ctx.mkEq(X, Ctx.bvConst(8, 'a')),
                          Rule::base({X}, 1, R), Rule::base({X}, 0, R)));
  A.setDelta(1, Rule::base({}, 1, Ctx.mkAdd(R, Ctx.bvConst(8, 1))));
  A.setFinalizer(0, Rule::base({}, 0, R));
  A.setFinalizer(1, Rule::base({R}, 1, R));
  return A;
}

class EquivCheckerTest : public ::testing::Test {
protected:
  TermContext Ctx;

  struct Built {
    CompiledTransducer T;
    FastPathPlan Plan;
  };

  Built buildFor(const Bst &A) {
    auto T = CompiledTransducer::compile(A);
    EXPECT_TRUE(T.has_value());
    FastPathPlan P = FastPathPlan::build(A, *T);
    return Built{std::move(*T), std::move(P)};
  }
};

TEST_F(EquivCheckerTest, CertifiesIntactPipeline) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Certified) << R.summary();
  EXPECT_EQ(R.StatesCertified, 2u);
  EXPECT_EQ(R.StatesRefuted, 0u);
  EXPECT_TRUE(R.Counterexamples.empty());
  EXPECT_TRUE(R.CodegenChecked);
  EXPECT_TRUE(R.CodegenOk);
  EXPECT_GT(R.TrivialMatches, 0u)
      << "shared encodings should discharge obligations by hash-consing";
}

// Mutation 1: corrupt one fast-path table entry.  Byte 'a' dispatches to
// a Const action targeting state 1; redirecting it to state 0 must be
// refuted with input 'a' as the witness.
TEST_F(EquivCheckerTest, RefutesCorruptedTableEntry) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  ASSERT_TRUE(B.Plan.stateHasTable(0));
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  FastPathPlan::Action &Act = ST.Actions[ST.Dispatch['a']];
  ASSERT_NE(Act.K, FastPathPlan::Action::Kind::Fallback);
  ASSERT_EQ(Act.Target, 1u);
  Act.Target = 0;

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  const Counterexample &CE = R.Counterexamples.front();
  EXPECT_EQ(CE.Part, "table");
  EXPECT_EQ(CE.State, 0u);
  ASSERT_TRUE(CE.HasInput);
  EXPECT_EQ(CE.Input, uint64_t('a'));
  EXPECT_EQ(CE.seedInput(), std::vector<uint64_t>{uint64_t('a')});
}

// Mutation 2: corrupt a run-kernel classification.  State 0's Copy kernel
// covers every byte but 'a'; claiming 'a' is kernel-driven in the
// dispatch map (without being in the kernel's byte mask) must be refuted.
TEST_F(EquivCheckerTest, RefutesCorruptedRunKernel) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  ASSERT_TRUE(B.Plan.stateHasTable(0));
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  ASSERT_FALSE(ST.Runs.empty()) << "echo self-loop must yield a Copy kernel";
  ASSERT_EQ(ST.RunId['a'], FastPathPlan::NoRun);
  ST.RunId['a'] = 0;

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  const Counterexample &CE = R.Counterexamples.front();
  EXPECT_EQ(CE.Part, "kernel");
  ASSERT_TRUE(CE.HasInput);
  EXPECT_EQ(CE.Input, uint64_t('a'));
  // Kernel witnesses replay as length-2 runs so the kernel loop engages.
  EXPECT_EQ(CE.seedInput().size(), 2u);
}

// Mutation 2b: corrupting the kernel's byte mask itself (claiming a byte
// whose bytecode action is NOT the kernel's self-loop) is also caught.
TEST_F(EquivCheckerTest, RefutesCorruptedKernelMask) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  ASSERT_FALSE(ST.Runs.empty());
  // Claim 'a' in both the mask and the dispatch map: membership is now
  // consistent, but 'a' is not a self-loop in the bytecode.
  ST.Runs[0].Mask['a' >> 6] |= uint64_t(1) << ('a' & 63);
  ST.Runs[0].SingleEscape = -1;
  ST.RunId['a'] = 0;

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  EXPECT_EQ(R.Counterexamples.front().Part, "kernel");
}

// Mutation 3: corrupt one bytecode guard in-memory.  State 0's program
// tests X == 'a'; retargeting the comparison to 'b' must be refuted with
// a concrete disagreeing input (the checker's solver finds 'a': the rule
// says "switch", the corrupted bytecode says "stay").
TEST_F(EquivCheckerTest, RefutesCorruptedBytecodeGuard) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  VmProgram &P = B.T.mutableDeltaProgram(0);
  bool Mutated = false;
  for (VmInstr &I : P.Code)
    if (I.Op == VmOp::Const && I.Imm == uint64_t('a')) {
      I.Imm = 'b';
      Mutated = true;
      break;
    }
  ASSERT_TRUE(Mutated) << "guard constant not found in:\n" << disassemble(P);

  CertReport R = certifyPipeline(A, B.T, /*Plan=*/nullptr);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  EXPECT_GT(R.SolverQueries, 0u)
      << "a semantic mutation must reach the solver, not pointer equality";
  ASSERT_FALSE(R.Counterexamples.empty());
  const Counterexample &CE = R.Counterexamples.front();
  EXPECT_EQ(CE.Part, "bytecode");
  EXPECT_EQ(CE.State, 0u);
  ASSERT_TRUE(CE.HasInput);
  // The two guards disagree exactly on {'a', 'b'}.
  EXPECT_TRUE(CE.Input == uint64_t('a') || CE.Input == uint64_t('b'))
      << CE.str();

  // The witness is concrete: the mutated VM visibly diverges from the
  // intact one on it (the regression-seed contract).
  auto Intact = CompiledTransducer::compile(A);
  ASSERT_TRUE(Intact.has_value());
  std::vector<uint64_t> Seed = CE.seedInput();
  std::vector<uint64_t> GoodOut, BadOut;
  CompiledTransducer::Cursor Good(*Intact), Bad(B.T);
  bool GoodAcc = true, BadAcc = true;
  for (uint64_t E : Seed) {
    GoodAcc = GoodAcc && Good.feed(E, GoodOut);
    BadAcc = BadAcc && Bad.feed(E, BadOut);
  }
  EXPECT_TRUE(GoodAcc != BadAcc || Good.state() != Bad.state() ||
              GoodOut != BadOut)
      << "counterexample must distinguish mutant from intact bytecode";
}

//===----------------------------------------------------------------------===//
// Nibble tables, spec pairs, wide tables: the SIMD-era obligations.
//===----------------------------------------------------------------------===//

// Mutation 4: corrupt a kernel's nibble encoding.  The shufti tables and
// the 256-bit mask drive different scan ladders (SIMD blocks vs
// SWAR/scalar tail); any membership disagreement means different ISA
// levels would find different span ends, so it must be refuted.
TEST_F(EquivCheckerTest, RefutesCorruptedNibbleTable) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  ASSERT_FALSE(ST.Runs.empty());
  NibbleTable &NT = ST.Runs[0].NT;
  ASSERT_TRUE(NT.Valid) << "255-byte escape-complement set is 2 rows";
  ASSERT_FALSE(NT.contains('a'));
  // Teach the shuffle tables that the escape byte is a member while the
  // mask still excludes it.
  NT.Lo['a' & 15] |= NT.Hi['a' >> 4];
  ASSERT_NE(NT.Hi['a' >> 4], 0) << "escape's hi-nibble row must be nonzero";
  ASSERT_TRUE(NT.contains('a'));

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  const Counterexample &CE = R.Counterexamples.front();
  EXPECT_EQ(CE.Part, "kernel");
  ASSERT_TRUE(CE.HasInput);
  EXPECT_EQ(CE.Input, uint64_t('a')) << CE.str();
}

/// Two states that unconditionally ping-pong with constant emits: the
/// shape detectSpecPairs promotes to a speculative alternating pair.
Bst makePingPong(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.bv(8), 2, 0, Value::bv(8, 0));
  TermRef R = A.regVar();
  A.setDelta(0, Rule::base({Ctx.bvConst(8, 0x11)}, 1, R));
  A.setDelta(1, Rule::base({Ctx.bvConst(8, 0x22)}, 0, R));
  A.setFinalizer(0, Rule::base({}, 0, R));
  A.setFinalizer(1, Rule::base({}, 1, R));
  return A;
}

TEST_F(EquivCheckerTest, CertifiesSpecPairs) {
  Bst A = makePingPong(Ctx);
  Built B = buildFor(A);
  ASSERT_EQ(B.Plan.stateTable(0).Specs.size(), 1u)
      << "ping-pong must be detected as a speculative pair";
  ASSERT_EQ(B.Plan.stateTable(1).Specs.size(), 1u);
  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Certified) << R.summary();
}

// Mutation 5: corrupt a spec pair's bulk-replayed effects.  The
// alternating scanner commits Emits1/Emits2 without consulting the
// dispatch table, so a drifted copy must be refuted.
TEST_F(EquivCheckerTest, RefutesCorruptedSpecEffects) {
  Bst A = makePingPong(Ctx);
  Built B = buildFor(A);
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  ASSERT_EQ(ST.Specs.size(), 1u);
  ASSERT_EQ(ST.Specs[0].Emits1, std::vector<uint64_t>{0x11});
  ST.Specs[0].Emits1 = {0x33};

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  EXPECT_EQ(R.Counterexamples.front().Part, "spec");
}

// Mutation 5b: a dispatch-map entry pointing at a pair whose leg mask
// does not cover the byte (the zero-init aliasing bug this obligation
// originally caught in the planner).
TEST_F(EquivCheckerTest, RefutesSpecMapOutsideMask) {
  Bst A = makePingPong(Ctx);
  Built B = buildFor(A);
  FastPathPlan::StateTable &ST = B.Plan.mutableStateTable(0);
  ASSERT_EQ(ST.Specs.size(), 1u);
  ST.Specs[0].M1[1] &= ~(uint64_t(1) << ('a' & 63)); // un-cover 'a'

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  EXPECT_EQ(R.Counterexamples.front().Part, "spec");
}

/// bv(16) echo whose wide elements emit x+1: every element of
/// [256, 2^16) lands in one Memo class with a distinct pool value, so
/// the checker's wide sweep exercises the per-element pools.
Bst makeWidePlusOne(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(16), Ctx.bv(16), Ctx.bv(16), 1, 0, Value::bv(16, 0));
  TermRef X = A.inputVar(), R = A.regVar();
  A.setDelta(0, Rule::ite(Ctx.mkUlt(X, Ctx.bvConst(16, 256)),
                          Rule::base({X}, 0, R),
                          Rule::base({Ctx.mkAdd(X, Ctx.bvConst(16, 1))}, 0,
                                     R)));
  A.setFinalizer(0, Rule::base({}, 0, R));
  return A;
}

TEST_F(EquivCheckerTest, CertifiesWideTable) {
  Bst A = makeWidePlusOne(Ctx);
  Built B = buildFor(A);
  ASSERT_TRUE(B.Plan.stateTable(0).Wide.Has)
      << "bv(16) input must get a wide-domain table";
  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Certified) << R.summary();
}

// Mutation 6: corrupt one memoized wide-pool entry.  The driver serves
// these values without re-evaluating the rules, so a flipped element
// must be refuted with that element as the witness.
TEST_F(EquivCheckerTest, RefutesCorruptedWidePool) {
  Bst A = makeWidePlusOne(Ctx);
  Built B = buildFor(A);
  WideTable &WT = B.Plan.mutableStateTable(0).Wide;
  ASSERT_TRUE(WT.Has);
  ASSERT_FALSE(WT.EmitOff.empty());
  const uint32_t V = 300;
  ASSERT_EQ(WT.EmitOff[V + 1] - WT.EmitOff[V], 1u);
  ASSERT_EQ(WT.EmitPool[WT.EmitOff[V]], V + 1);
  WT.EmitPool[WT.EmitOff[V]] = 0xdead;

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  const Counterexample &CE = R.Counterexamples.front();
  EXPECT_EQ(CE.Part, "wide");
  ASSERT_TRUE(CE.HasInput);
  EXPECT_EQ(CE.Input, uint64_t(V)) << CE.str();
}

// Mutation 6b: retarget a wide class.  Structure is checked per
// (class, path) pair, so even a class shared by thousands of elements
// is caught.
TEST_F(EquivCheckerTest, RefutesCorruptedWideTarget) {
  Bst A = makeWidePlusOne(Ctx);
  Built B = buildFor(A);
  WideTable &WT = B.Plan.mutableStateTable(0).Wide;
  ASSERT_TRUE(WT.Has);
  uint16_t CI = WT.ClassOf[300];
  ASSERT_EQ(WT.Classes[CI].K, WideTable::Class::Kind::Memo);
  WT.Classes[CI].Target = 7; // out-of-range successor

  CertReport R = certifyPipeline(A, B.T, &B.Plan);
  EXPECT_EQ(R.Status, CertStatus::Refuted) << R.summary();
  ASSERT_FALSE(R.Counterexamples.empty());
  EXPECT_EQ(R.Counterexamples.front().Part, "wide");
}

// Satellite 3: a zero budget means "no time at all" — every state
// degrades to unverified (and counts as a timeout), never to certified.
// The pipeline still has no refutation, so callers may still serve it.
TEST_F(EquivCheckerTest, ZeroBudgetDegradesToUnverified) {
  Bst A = makeEchoSwitch(Ctx);
  Built B = buildFor(A);
  CertOptions Opts;
  Opts.StateBudgetSeconds = 0;
  CertReport R = certifyPipeline(A, B.T, &B.Plan, Opts);
  EXPECT_EQ(R.Status, CertStatus::Unverified) << R.summary();
  EXPECT_EQ(R.StatesCertified, 0u);
  EXPECT_EQ(R.StatesUnverified, 2u);
  EXPECT_EQ(R.TimedOutStates, 2u);
  EXPECT_EQ(R.StatesRefuted, 0u);
  EXPECT_TRUE(R.Counterexamples.empty());
}

TEST_F(EquivCheckerTest, ClassifierHashStableAcrossContexts) {
  uint64_t H1, H2;
  {
    TermContext C1;
    // Interleave unrelated terms so internal ids differ between contexts.
    C1.var("noise", C1.bv(32));
    H1 = classifierHash(makeEchoSwitch(C1));
  }
  {
    TermContext C2;
    H2 = classifierHash(makeEchoSwitch(C2));
  }
  EXPECT_EQ(H1, H2) << "hash must not depend on context-local term ids";

  TermContext C3;
  Bst Other(C3, C3.bv(8), C3.bv(8), C3.bv(8), 1, 0, Value::bv(8, 0));
  TermRef X = Other.inputVar();
  Other.setDelta(0, Rule::base({X}, 0, Other.regVar()));
  Other.setFinalizer(0, Rule::base({}, 0, Other.regVar()));
  EXPECT_NE(classifierHash(Other), H1);
}

TEST_F(EquivCheckerTest, GeneratedSourceEmbedsClassifierHash) {
  Bst A = makeEchoSwitch(Ctx);
  CodeGenOptions Opts;
  Opts.FunctionName = "probe";
  std::string Src = generateCpp(A, Opts);
  char Want[64];
  snprintf(Want, sizeof(Want), "probe_classifier_hash = 0x%llx",
           (unsigned long long)classifierHash(A));
  EXPECT_NE(Src.find(Want), std::string::npos)
      << "generated unit must carry the classifier hash";
}

TEST_F(EquivCheckerTest, NativeArtifactExportsClassifierHash) {
  Bst A = makeEchoSwitch(Ctx);
  std::string Err;
  auto N = NativeTransducer::compile(A, "equivhash", &Err);
  if (!N)
    GTEST_SKIP() << "no host compiler: " << Err;
  EXPECT_EQ(N->classifierHash(), classifierHash(A))
      << "dlopen'd .so must re-export the hash it was generated from";
}

//===----------------------------------------------------------------------===//
// Runtime integration: the EFC_CERTIFY cache-admission gate.
//===----------------------------------------------------------------------===//

class CertifyGateTest : public ::testing::Test {
protected:
  void TearDown() override {
    unsetenv("EFC_CERTIFY");
    unsetenv("EFC_CERTIFY_BUDGET_MS");
  }

  static runtime::PipelineSpec simpleSpec() {
    runtime::PipelineSpec Spec;
    Spec.Kind = runtime::PipelineSpec::Frontend::Regex;
    Spec.Pattern = "(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*";
    Spec.Agg = "max";
    Spec.Format = "decimal";
    return Spec;
  }
};

TEST_F(CertifyGateTest, CertifiedBuildServesAndCounts) {
  setenv("EFC_CERTIFY", "1", 1);
  runtime::PipelineCache Cache(4);
  std::string Err;
  auto P = Cache.get(simpleSpec(), false, &Err);
  ASSERT_NE(P, nullptr) << Err;
  EXPECT_EQ(P->Cert, CertStatus::Certified) << P->CertSummary;
  runtime::PipelineCache::Stats St = Cache.stats();
  EXPECT_EQ(St.CertCertified, 1u);
  EXPECT_EQ(St.CertRefuted, 0u);
  EXPECT_NE(St.str().find("cert_certified=1"), std::string::npos);
}

// Satellite 3, runtime half: a zero certification budget produces an
// *unverified* entry that still serves, and the timeout counter reaches
// the stats line every operator sees.
TEST_F(CertifyGateTest, ZeroBudgetStillServesAndBumpsTimeouts) {
  setenv("EFC_CERTIFY", "1", 1);
  setenv("EFC_CERTIFY_BUDGET_MS", "0", 1);
  runtime::PipelineCache Cache(4);
  std::string Err;
  auto P = Cache.get(simpleSpec(), false, &Err);
  ASSERT_NE(P, nullptr) << "unverified must serve, only refuted blocks: "
                        << Err;
  EXPECT_EQ(P->Cert, CertStatus::Unverified) << P->CertSummary;
  EXPECT_GT(P->CertTimeouts, 0u);
  runtime::PipelineCache::Stats St = Cache.stats();
  EXPECT_EQ(St.CertUnverified, 1u);
  EXPECT_GT(St.CertTimeouts, 0u);
  EXPECT_NE(St.str().find("certify_timeouts="), std::string::npos);
}

TEST_F(CertifyGateTest, OffByDefault) {
  runtime::PipelineCache Cache(4);
  std::string Err;
  auto P = Cache.get(simpleSpec(), false, &Err);
  ASSERT_NE(P, nullptr) << Err;
  EXPECT_EQ(P->Cert, CertStatus::Unchecked);
}

} // namespace
