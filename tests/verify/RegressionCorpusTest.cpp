//===- tests/verify/RegressionCorpusTest.cpp - Committed seed replay ------===//
//
// Replays the committed regression corpus (tests/data/regress/*.corpus)
// through the differential oracle across five backends: fused VM
// bytecode, the byte-class fast path, the fast path fed in tiny chunks
// (cutting run-kernel spans at feed() boundaries), the data-parallel
// chunked executor (adversarially small chunk/lane knobs), and the
// generated-C++ .so when a host compiler is present.
//
// Corpus entries come from two sources: counterexamples promoted by
// `efc-verify --corpus-out tests/data/regress` after a refutation, and
// hand-written seeds pinning inputs that exercised historically delicate
// paths (base64 padding, run-kernel escapes, multi-byte UTF-8 cut points,
// HTML escape expansion).  File format, one `key=value` per line:
//
//   # free-form comment (typically the counterexample one-liner)
//   pipeline=<name>          # efc-verify pipeline registry name
//   input-text=<ascii>       # input bytes as literal ASCII, or
//   input=0x61,0x62,...      # input elements as hex u64s
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "common/Oracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

using namespace efc;
using namespace efc::bench;
using namespace efc::testing;

namespace {

#ifndef EFC_REGRESS_DIR
#error "EFC_REGRESS_DIR must point at the committed corpus directory"
#endif

struct CorpusEntry {
  std::string File;
  std::string Pipeline;
  std::vector<uint64_t> Input;
};

std::optional<CorpusEntry> parseCorpusFile(const std::filesystem::path &P,
                                           std::string *Err) {
  CorpusEntry E;
  E.File = P.filename().string();
  std::ifstream F(P);
  if (!F) {
    *Err = "cannot open " + P.string();
    return std::nullopt;
  }
  std::string Line;
  bool HaveInput = false;
  while (std::getline(F, Line)) {
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Eq = Line.find('=');
    if (Eq == std::string::npos) {
      *Err = E.File + ": malformed line '" + Line + "'";
      return std::nullopt;
    }
    std::string Key = Line.substr(0, Eq), Val = Line.substr(Eq + 1);
    if (Key == "pipeline") {
      E.Pipeline = Val;
    } else if (Key == "input-text") {
      for (unsigned char C : Val)
        E.Input.push_back(C);
      HaveInput = true;
    } else if (Key == "input") {
      for (size_t I = 0; I < Val.size();) {
        size_t Comma = Val.find(',', I);
        std::string Tok = Val.substr(I, Comma == std::string::npos
                                            ? std::string::npos
                                            : Comma - I);
        E.Input.push_back(strtoull(Tok.c_str(), nullptr, 0));
        if (Comma == std::string::npos)
          break;
        I = Comma + 1;
      }
      HaveInput = true;
    } else {
      *Err = E.File + ": unknown key '" + Key + "'";
      return std::nullopt;
    }
  }
  if (E.Pipeline.empty() || !HaveInput) {
    *Err = E.File + ": needs pipeline= and input=/input-text=";
    return std::nullopt;
  }
  return E;
}

/// Same registry as tools/efc-verify.cpp: corpus entries name pipelines
/// by their efc-verify name.
BuiltPipeline buildByName(const std::string &Name, std::string *Err) {
  if (Name == "base64-avg")
    return makeBase64AvgPipeline();
  if (Name == "csv-max")
    return makeCsvMaxPipeline();
  if (Name == "base64-delta")
    return makeBase64DeltaPipeline();
  if (Name == "utf8-lines")
    return makeUtf8LinesPipeline();
  if (Name == "cc-id")
    return makeCcIdPipeline();
  if (Name == "utf8-toint")
    return makeUtf8ToIntPipeline();
  if (Name == "html-encode")
    return makeHtmlEncodePipeline();
  if (Name == "tpcdi-sql")
    return makeTpcDiSqlPipeline();
  if (Name == "mondial")
    return makeMondialPipeline();
  *Err = "unknown pipeline '" + Name + "'";
  return BuiltPipeline{};
}

class RegressionCorpusTest : public ::testing::Test {
protected:
  // One oracle per pipeline name, shared across corpus entries: oracle
  // construction fuses/compiles every backend once, replay is cheap.
  // The oracle borrows terms owned by the pipeline's TermContext, so the
  // context rides along.
  struct Shared {
    std::shared_ptr<TermContext> Ctx;
    std::shared_ptr<Oracle> O;
  };
  static std::map<std::string, Shared> &oracles() {
    static std::map<std::string, Shared> M;
    return M;
  }

  std::shared_ptr<Oracle> oracleFor(const std::string &Pipeline,
                                    std::string *Err) {
    auto It = oracles().find(Pipeline);
    if (It != oracles().end())
      return It->second.O;
    BuiltPipeline P = buildByName(Pipeline, Err);
    if (P.Stages.empty())
      return nullptr;
    unsigned Backends =
        BK_FusedVm | BK_FastPath | BK_FastSkip | BK_Parallel | BK_Native;
    auto O = std::make_shared<Oracle>(std::move(P.Stages),
                                      OracleOptions(Backends));
    return oracles().emplace(Pipeline, Shared{P.Ctx, std::move(O)})
        .first->second.O;
  }
};

TEST_F(RegressionCorpusTest, ReplaysEveryCommittedSeed) {
  std::filesystem::path Dir(EFC_REGRESS_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(Dir))
      << "corpus directory missing: " << Dir;

  unsigned Entries = 0;
  bool NativeSeen = false;
  for (const auto &DE : std::filesystem::directory_iterator(Dir)) {
    if (DE.path().extension() != ".corpus")
      continue;
    std::string Err;
    auto E = parseCorpusFile(DE.path(), &Err);
    ASSERT_TRUE(E.has_value()) << Err;
    auto O = oracleFor(E->Pipeline, &Err);
    ASSERT_NE(O, nullptr) << E->File << ": " << Err;
    NativeSeen |= O->nativeAvailable();

    const Type *InTy = O->stages().front().inputType();
    ASSERT_TRUE(InTy->isBitVec()) << E->File;
    unsigned W = InTy->width();
    uint64_t Mask = W >= 64 ? ~uint64_t(0) : (uint64_t(1) << W) - 1;
    std::vector<Value> In;
    In.reserve(E->Input.size());
    for (uint64_t B : E->Input)
      In.push_back(Value::bv(W, B & Mask));

    std::optional<Disagreement> D = O->check(In);
    EXPECT_FALSE(D.has_value())
        << E->File << " (" << E->Pipeline << "): " << (D ? D->str() : "");
    ++Entries;
  }
  EXPECT_GE(Entries, 6u) << "committed corpus unexpectedly small";
  if (!NativeSeen)
    fprintf(stderr, "RegressionCorpusTest: host compiler unavailable, "
                    "native backend skipped\n");
}

} // namespace
