//===- tests/support/MetricsTest.cpp - Registry and trace-span tests ------===//
//
// Unit coverage for the observability layer: counter/gauge/histogram
// semantics (notably Prometheus `le` bucket boundaries), registry
// interning by (name, labels), the text exposition format, and the JSONL
// trace sink driven through the reinitFromEnv() test hook.
//
// The registry is process-global and append-only, so every test uses
// metric names unique to itself; values are asserted as deltas where a
// metric could plausibly be shared.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

using namespace efc;
using namespace efc::metrics;

namespace {

TEST(Counter, IncrementAndValue) {
  Counter &C = Registry::instance().counter("test_counter_basic", "help");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
}

TEST(Counter, InterningReturnsSameObject) {
  Counter &A = Registry::instance().counter("test_counter_interned");
  Counter &B = Registry::instance().counter("test_counter_interned");
  EXPECT_EQ(&A, &B);
  A.inc();
  EXPECT_EQ(B.value(), 1u);
}

TEST(Counter, DistinctLabelsDistinctObjects) {
  Registry &R = Registry::instance();
  Counter &A = R.counter("test_counter_lbl", "h", "backend=\"vm\"");
  Counter &B = R.counter("test_counter_lbl", "h", "backend=\"native\"");
  EXPECT_NE(&A, &B);
  A.inc(3);
  EXPECT_EQ(B.value(), 0u);
}

TEST(DoubleCounter, Accumulates) {
  DoubleCounter &D = Registry::instance().dcounter("test_dcounter");
  D.add(0.25);
  D.add(0.5);
  EXPECT_DOUBLE_EQ(D.value(), 0.75);
}

TEST(Gauge, SetAddSub) {
  Gauge &G = Registry::instance().gauge("test_gauge");
  G.set(10);
  G.add(5);
  G.sub(7);
  EXPECT_EQ(G.value(), 8);
  G.sub(20);
  EXPECT_EQ(G.value(), -12); // gauges may go negative
}

// Prometheus `le` semantics: a sample exactly equal to a bucket's upper
// bound belongs to that bucket, not the next.
TEST(Histogram, SampleAtBoundLandsInThatBucket) {
  Histogram &H = Registry::instance().histogram(
      "test_hist_bounds", "h", {1.0, 2.0, 5.0});
  ASSERT_EQ(H.numBounds(), 3u);
  H.observe(1.0); // == bounds[0]  -> bucket 0
  H.observe(0.5); //  < bounds[0]  -> bucket 0
  H.observe(1.5); //               -> bucket 1
  H.observe(2.0); // == bounds[1]  -> bucket 1
  H.observe(5.0); // == bounds[2]  -> bucket 2
  H.observe(6.0); //  > all bounds -> +Inf
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 2u);
  EXPECT_EQ(H.bucketCount(2), 1u);
  EXPECT_EQ(H.bucketCount(3), 1u); // index numBounds() == +Inf
  EXPECT_EQ(H.count(), 6u);
  EXPECT_DOUBLE_EQ(H.sum(), 1.0 + 0.5 + 1.5 + 2.0 + 5.0 + 6.0);
}

TEST(Histogram, ZeroAndNegativeSamplesGoToFirstBucket) {
  Histogram &H =
      Registry::instance().histogram("test_hist_zero", "h", {0.0, 1.0});
  H.observe(0.0);  // == bounds[0]
  H.observe(-1.0); //  < bounds[0]
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.count(), 2u);
}

TEST(Histogram, InterningPreservesLayout) {
  Registry &R = Registry::instance();
  Histogram &A = R.histogram("test_hist_intern", "h", {1.0, 10.0});
  Histogram &B = R.histogram("test_hist_intern", "h", {1.0, 10.0});
  EXPECT_EQ(&A, &B);
  EXPECT_EQ(B.numBounds(), 2u);
  EXPECT_DOUBLE_EQ(B.bound(1), 10.0);
}

TEST(Render, CounterFamilyHeaderAndValue) {
  Registry &R = Registry::instance();
  R.counter("test_render_plain", "A plain counter").inc(7);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# HELP test_render_plain A plain counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE test_render_plain counter\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\ntest_render_plain 7\n"), std::string::npos);
}

TEST(Render, LabeledVariantsShareOneHeader) {
  Registry &R = Registry::instance();
  R.counter("test_render_lbl", "Labeled", "backend=\"vm\"").inc(1);
  R.counter("test_render_lbl", "Labeled", "backend=\"native\"").inc(2);
  std::string Text = R.renderPrometheus();
  // Exactly one HELP line for the family, both label bodies present.
  size_t First = Text.find("# HELP test_render_lbl ");
  ASSERT_NE(First, std::string::npos);
  EXPECT_EQ(Text.find("# HELP test_render_lbl ", First + 1),
            std::string::npos);
  EXPECT_NE(Text.find("test_render_lbl{backend=\"vm\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_render_lbl{backend=\"native\"} 2\n"),
            std::string::npos);
}

TEST(Render, HistogramCumulativeBuckets) {
  Registry &R = Registry::instance();
  Histogram &H = R.histogram("test_render_hist", "H", {0.5, 2.0});
  H.observe(0.25);
  H.observe(1.0);
  H.observe(9.0);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# TYPE test_render_hist histogram\n"),
            std::string::npos);
  // Buckets are cumulative in the exposition even though storage is raw.
  EXPECT_NE(Text.find("test_render_hist_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_render_hist_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_render_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(Text.find("test_render_hist_count 3\n"), std::string::npos);
  EXPECT_NE(Text.find("test_render_hist_sum 10.25\n"), std::string::npos);
}

TEST(Render, GaugeType) {
  Registry &R = Registry::instance();
  R.gauge("test_render_gauge", "G").set(-4);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# TYPE test_render_gauge gauge\n"),
            std::string::npos);
  EXPECT_NE(Text.find("\ntest_render_gauge -4\n"), std::string::npos);
}

TEST(Render, FamiliesSortedByName) {
  Registry &R = Registry::instance();
  R.counter("test_sorted_b").inc();
  R.counter("test_sorted_a").inc();
  std::string Text = R.renderPrometheus();
  size_t A = Text.find("# TYPE test_sorted_a");
  size_t B = Text.find("# TYPE test_sorted_b");
  ASSERT_NE(A, std::string::npos);
  ASSERT_NE(B, std::string::npos);
  EXPECT_LT(A, B); // registration order was b, a — render sorts
}

//===----------------------------------------------------------------------===//
// Trace spans
//===----------------------------------------------------------------------===//

/// Reads every line of \p Path.
std::vector<std::string> linesOf(const std::string &Path) {
  std::ifstream F(Path);
  std::vector<std::string> Lines;
  std::string L;
  while (std::getline(F, L))
    Lines.push_back(L);
  return Lines;
}

/// Extracts the integer value of \p Key from a JSONL span line, or -1.
long long jsonInt(const std::string &Line, const std::string &Key) {
  size_t P = Line.find("\"" + Key + "\":");
  if (P == std::string::npos)
    return -1;
  return atoll(Line.c_str() + P + Key.size() + 3);
}

class TraceSink : public ::testing::Test {
protected:
  std::string Path;

  void SetUp() override {
    Path = ::testing::TempDir() + "efc_trace_test.jsonl";
    std::remove(Path.c_str());
    setenv("EFC_TRACE", Path.c_str(), 1);
    trace::reinitFromEnv();
  }
  void TearDown() override {
    unsetenv("EFC_TRACE");
    trace::reinitFromEnv();
    std::remove(Path.c_str());
  }
};

TEST_F(TraceSink, NestedSpansFormATree) {
  ASSERT_TRUE(trace::enabled());
  {
    trace::Span Outer("outer");
    Outer.note("answer", uint64_t(42));
    {
      trace::Span Inner("inner");
      Inner.note("msg", std::string_view("a\"b"));
    }
  }
  // Close the sink so everything is flushed before we read.
  unsetenv("EFC_TRACE");
  trace::reinitFromEnv();

  auto Lines = linesOf(Path);
  ASSERT_EQ(Lines.size(), 2u); // inner dies first
  EXPECT_NE(Lines[0].find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Lines[1].find("\"answer\":42"), std::string::npos);
  EXPECT_NE(Lines[0].find("\"msg\":\"a\\\"b\""), std::string::npos)
      << "string attributes must be JSON-escaped: " << Lines[0];

  long long OuterId = jsonInt(Lines[1], "id");
  ASSERT_GT(OuterId, 0);
  EXPECT_EQ(jsonInt(Lines[0], "parent"), OuterId);
  // The outer span is a root: no parent key at all.
  EXPECT_EQ(Lines[1].find("\"parent\""), std::string::npos);
  EXPECT_GE(jsonInt(Lines[0], "dur_us"), 0);
}

TEST_F(TraceSink, DisabledSpansAreInert) {
  unsetenv("EFC_TRACE");
  trace::reinitFromEnv();
  ASSERT_FALSE(trace::enabled());
  {
    trace::Span S("ghost");
    S.note("k", uint64_t(1));
  }
  // Re-enable and confirm the sink saw nothing from the inert span.
  setenv("EFC_TRACE", Path.c_str(), 1);
  trace::reinitFromEnv();
  {
    trace::Span S("real");
  }
  unsetenv("EFC_TRACE");
  trace::reinitFromEnv();
  auto Lines = linesOf(Path);
  ASSERT_EQ(Lines.size(), 1u);
  EXPECT_NE(Lines[0].find("\"name\":\"real\""), std::string::npos);
}

TEST_F(TraceSink, SiblingSpansShareAParent) {
  {
    trace::Span Root("root");
    { trace::Span A("a"); }
    { trace::Span B("b"); }
  }
  unsetenv("EFC_TRACE");
  trace::reinitFromEnv();
  auto Lines = linesOf(Path);
  ASSERT_EQ(Lines.size(), 3u);
  long long RootId = jsonInt(Lines[2], "id");
  EXPECT_EQ(jsonInt(Lines[0], "parent"), RootId);
  EXPECT_EQ(jsonInt(Lines[1], "parent"), RootId);
}

} // namespace
