//===- tests/support/EnvParseTest.cpp - Validated env/flag parsing --------===//
//
// The regression surface of the env-parsing hardening: the historical
// call sites used bare atoi/strtoull and silently mapped garbage to 0
// (EFC_SESSION_IDLE_MS=abc meant "reap immediately").  These tests pin
// both disciplines of support/EnvParse.h — strict CLI parses that reject
// any malformed token, and env readers that warn once and fall back to
// the documented default.
//
//===----------------------------------------------------------------------===//

#include "support/EnvParse.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace efc;

namespace {

/// Sets NAME=VALUE for the test body, restores on destruction, and
/// clears the warn-once set so each test observes its own warnings.
class ScopedEnv {
public:
  ScopedEnv(const char *Name, const char *Value) : Name(Name) {
    env::resetWarnings();
    if (Value)
      setenv(Name, Value, /*overwrite=*/1);
    else
      unsetenv(Name);
  }
  ~ScopedEnv() {
    unsetenv(Name);
    env::resetWarnings();
  }

private:
  const char *Name;
};

TEST(EnvParseStrict, U64AcceptsWholeNumbers) {
  uint64_t V = 99;
  EXPECT_TRUE(env::parseU64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(env::parseU64("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_TRUE(env::parseU64("0x20", V, /*Base=*/0));
  EXPECT_EQ(V, 0x20u);
  EXPECT_TRUE(env::parseU64("ff", V, /*Base=*/16));
  EXPECT_EQ(V, 0xffu);
}

TEST(EnvParseStrict, U64RejectsGarbageUntouched) {
  uint64_t V = 42;
  // The old strtoull(V, nullptr, 10) call sites accepted every one of
  // these and read 0 (or a truncated prefix).
  EXPECT_FALSE(env::parseU64("", V));
  EXPECT_FALSE(env::parseU64(nullptr, V));
  EXPECT_FALSE(env::parseU64("abc", V));
  EXPECT_FALSE(env::parseU64("1M", V));
  EXPECT_FALSE(env::parseU64("12 ", V));
  EXPECT_FALSE(env::parseU64(" 12", V));
  EXPECT_FALSE(env::parseU64("-1", V)); // strtoull would wrap, not fail
  EXPECT_FALSE(env::parseU64("99999999999999999999999", V)); // ERANGE
  EXPECT_EQ(V, 42u) << "failed parses must leave Out untouched";
}

TEST(EnvParseStrict, I64SignsAndRange) {
  int64_t V = 0;
  EXPECT_TRUE(env::parseI64("-5", V));
  EXPECT_EQ(V, -5);
  EXPECT_TRUE(env::parseI64("+7", V));
  EXPECT_EQ(V, 7);
  EXPECT_FALSE(env::parseI64("12x", V));
  EXPECT_FALSE(env::parseI64("9223372036854775808", V)); // INT64_MAX + 1
}

TEST(EnvParseStrict, F64WholeTokenOnly) {
  double V = 0;
  EXPECT_TRUE(env::parseF64("2.5", V));
  EXPECT_DOUBLE_EQ(V, 2.5);
  EXPECT_TRUE(env::parseF64("1e3", V));
  EXPECT_DOUBLE_EQ(V, 1000.0);
  EXPECT_FALSE(env::parseF64("2.5ms", V));
  EXPECT_FALSE(env::parseF64("", V));
}

TEST(EnvParseEnv, UnsetReturnsDefaultWithoutWarning) {
  ScopedEnv E("EFC_TEST_KNOB", nullptr);
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 17), 17u);
  EXPECT_EQ(env::resetWarnings(), 0u);
}

TEST(EnvParseEnv, WellFormedValueWins) {
  ScopedEnv E("EFC_TEST_KNOB", "123");
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 17), 123u);
  EXPECT_EQ(env::resetWarnings(), 0u);
}

TEST(EnvParseEnv, MalformedValueWarnsOnceAndFallsBack) {
  ScopedEnv E("EFC_TEST_KNOB", "abc");
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 17), 17u)
      << "garbage must fall back to the default, not parse as 0";
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 17), 17u);
  // Two reads, one recorded warning: the warn-once set deduplicates.
  EXPECT_EQ(env::resetWarnings(), 1u);
}

TEST(EnvParseEnv, OutOfRangeClampsToDefault) {
  ScopedEnv E("EFC_TEST_KNOB", "5000");
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 8, /*Min=*/1, /*Max=*/1024), 8u);
  EXPECT_EQ(env::resetWarnings(), 1u);
}

TEST(EnvParseEnv, HexSeedBaseZero) {
  // EFC_FUZZ_SEED reads base 0 so 0x-prefixed seeds round-trip.
  ScopedEnv E("EFC_TEST_KNOB", "0xdead");
  EXPECT_EQ(env::u64("EFC_TEST_KNOB", 0, 0, UINT64_MAX, /*Base=*/0),
            0xdeadu);
}

TEST(EnvParseEnv, SignedAndFloatVariants) {
  {
    ScopedEnv E("EFC_TEST_KNOB", "-250");
    EXPECT_EQ(env::i64("EFC_TEST_KNOB", 1000), -250);
  }
  {
    ScopedEnv E("EFC_TEST_KNOB", "2.75");
    EXPECT_DOUBLE_EQ(env::f64("EFC_TEST_KNOB", 1.0), 2.75);
  }
  {
    ScopedEnv E("EFC_TEST_KNOB", "nan");
    EXPECT_DOUBLE_EQ(env::f64("EFC_TEST_KNOB", 1.5, 0.0, 10.0), 1.5)
        << "NaN must not pass a range check";
    EXPECT_EQ(env::resetWarnings(), 1u);
  }
}

TEST(EnvParseEnv, FlagMatchesHistoricalAtoiContract) {
  {
    ScopedEnv E("EFC_TEST_FLAG", "0");
    EXPECT_FALSE(env::flag("EFC_TEST_FLAG", true));
  }
  {
    ScopedEnv E("EFC_TEST_FLAG", "1");
    EXPECT_TRUE(env::flag("EFC_TEST_FLAG", false));
  }
  {
    // atoi("2") != 0 was true; keep that for well-formed values.
    ScopedEnv E("EFC_TEST_FLAG", "2");
    EXPECT_TRUE(env::flag("EFC_TEST_FLAG", false));
  }
  {
    // atoi("yes") read 0 == disabled; now it warns and keeps the default.
    ScopedEnv E("EFC_TEST_FLAG", "yes");
    EXPECT_TRUE(env::flag("EFC_TEST_FLAG", true));
    EXPECT_EQ(env::resetWarnings(), 1u);
  }
}

} // namespace
