//===- tests/solver/CacheTest.cpp - checkWith cache correctness -----------===//
//
// Differential property: a solver with result caching must answer every
// query in a random push/add/checkWith/pop script exactly like a solver
// without caching.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

TEST(SolverCacheTest, RandomScriptsAgreeWithUncached) {
  TermContext Ctx;
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  SplitMix64 Rng(0xCAC4E);

  // A small guard pool so contexts (and therefore cache keys) repeat.
  auto randGuard = [&]() -> TermRef {
    static const uint64_t Bounds[] = {0, 40, 90, 200, 255};
    uint64_t Lo = Bounds[Rng.below(5)], Hi = Bounds[Rng.below(5)];
    if (Lo > Hi)
      std::swap(Lo, Hi);
    TermRef V = Rng.below(2) ? X : Y;
    TermRef G = Ctx.mkInRange(V, Lo, Hi);
    if (Rng.below(3) == 0)
      G = Ctx.mkNot(G);
    if (Rng.below(4) == 0)
      G = Ctx.mkEq(Ctx.mkAdd(X, Y), Ctx.bvConst(8, Bounds[Rng.below(5)]));
    return G;
  };

  for (int Trial = 0; Trial < 8; ++Trial) {
    Solver Cached(Ctx), Uncached(Ctx);
    Uncached.setCacheEnabled(false);
    unsigned Depth = 0;
    for (int Step = 0; Step < 120; ++Step) {
      switch (Rng.below(4)) {
      case 0: {
        Cached.push();
        Uncached.push();
        ++Depth;
        TermRef G = randGuard();
        Cached.add(G);
        Uncached.add(G);
        break;
      }
      case 1:
        if (Depth > 0) {
          Cached.pop();
          Uncached.pop();
          --Depth;
        }
        break;
      default: {
        TermRef G = randGuard();
        SatResult A = Cached.checkWith(G);
        SatResult B = Uncached.checkWith(G);
        ASSERT_EQ(A, B) << "trial " << Trial << " step " << Step;
        break;
      }
      }
    }
    EXPECT_GT(Cached.stats().CacheHits, 0u)
        << "scripts should produce repeats";
  }
}

TEST(SolverCacheTest, CacheKeyedOnFullContext) {
  // The same extra assertion under different contexts must not collide.
  TermContext Ctx;
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  TermRef Probe = Ctx.mkUle(Ctx.bvConst(8, 100), X);

  EXPECT_EQ(S.checkWith(Probe), SatResult::Sat);
  S.push();
  S.add(Ctx.mkUle(X, Ctx.bvConst(8, 50)));
  EXPECT_EQ(S.checkWith(Probe), SatResult::Unsat)
      << "cached Sat from the outer context must not leak";
  S.pop();
  EXPECT_EQ(S.checkWith(Probe), SatResult::Sat);
}

} // namespace
