//===- tests/solver/SolverTest.cpp - SMT-lite solver tests ----------------===//
//
// Includes a differential property test: random terms over small-width
// variables are checked against brute-force enumeration of all assignments,
// both for the sat/unsat verdict and for model correctness.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"
#include "support/Stopwatch.h"
#include "term/Eval.h"
#include "term/Print.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class SolverTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(SolverTest, TrivialSat) {
  Solver S(Ctx);
  EXPECT_EQ(S.check(), SatResult::Sat);
}

TEST_F(SolverTest, TrivialUnsat) {
  Solver S(Ctx);
  S.add(Ctx.falseConst());
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST_F(SolverTest, RangeGuardConflict) {
  // The paper's UTF-8/ToInt example: a continuation byte can never decode
  // to an ASCII digit when the lead byte is in [0xC2, 0xDF].
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef R = Ctx.var("r", Ctx.bv(16));
  Solver S(Ctx);
  // r = (lead & 0x3F) << 6 for lead in [0xC2,0xDF]  =>  r in [0x080,0x7C0]
  TermRef Lead = Ctx.var("lead", Ctx.bv(8));
  S.add(Ctx.mkInRange(Lead, 0xC2, 0xDF));
  S.add(Ctx.mkEq(
      R, Ctx.mkShlC(Ctx.mkBvAnd(Ctx.mkZExt(Lead, 16), Ctx.bvConst(16, 0x3F)),
                    6)));
  S.add(Ctx.mkInRange(X, 0x80, 0xBF));
  TermRef Decoded =
      Ctx.mkBvOr(R, Ctx.mkBvAnd(Ctx.mkZExt(X, 16), Ctx.bvConst(16, 0x3F)));
  S.add(Ctx.mkInRange(Decoded, 0x30, 0x39));
  EXPECT_EQ(S.check(), SatResult::Unsat);
}

TEST_F(SolverTest, PushPopRestoresSatisfiability) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkUle(X, Ctx.bvConst(8, 10)));
  EXPECT_EQ(S.check(), SatResult::Sat);
  S.push();
  S.add(Ctx.mkUle(Ctx.bvConst(8, 20), X));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  S.pop();
  EXPECT_EQ(S.check(), SatResult::Sat);
}

TEST_F(SolverTest, DeepPushPopNesting) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  for (int I = 0; I < 6; ++I) {
    S.push();
    S.add(Ctx.mkUle(Ctx.bvConst(8, uint64_t(I * 10)), X));
  }
  EXPECT_EQ(S.check(), SatResult::Sat);
  S.push();
  S.add(Ctx.mkUlt(X, Ctx.bvConst(8, 50)));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  S.pop();
  EXPECT_EQ(S.check(), SatResult::Sat);
  for (int I = 0; I < 6; ++I)
    S.pop();
  EXPECT_EQ(S.numScopes(), 0u);
}

TEST_F(SolverTest, ModelSatisfiesAssertions) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  Solver S(Ctx);
  S.setPresolveEnabled(false); // force the SAT path
  S.add(Ctx.mkEq(Ctx.mkAdd(X, Y), Ctx.bvConst(8, 100)));
  S.add(Ctx.mkUlt(X, Y));
  ASSERT_EQ(S.check(), SatResult::Sat);
  Value XV = S.modelValue(X);
  Value YV = S.modelValue(Y);
  EXPECT_EQ((XV.bits() + YV.bits()) & 0xFF, 100u);
  EXPECT_LT(XV.bits(), YV.bits());
}

TEST_F(SolverTest, MultiplicationCircuit) {
  TermRef X = Ctx.var("x", Ctx.bv(16));
  Solver S(Ctx);
  S.setPresolveEnabled(false);
  S.add(Ctx.mkEq(Ctx.mkMul(X, Ctx.bvConst(16, 10)), Ctx.bvConst(16, 420)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  Value XV = S.modelValue(X);
  EXPECT_EQ((XV.bits() * 10) & 0xFFFF, 420u);
}

TEST_F(SolverTest, DivisionCircuit) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.setPresolveEnabled(false);
  S.add(Ctx.mkEq(Ctx.mkUDiv(X, Ctx.bvConst(8, 10)), Ctx.bvConst(8, 7)));
  S.add(Ctx.mkEq(Ctx.mkURem(X, Ctx.bvConst(8, 10)), Ctx.bvConst(8, 3)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.modelValue(X).bits(), 73u);
}

TEST_F(SolverTest, TupleVariablesGetConsistentModels) {
  const Type *RegTy = Ctx.tupleTy({Ctx.bv(8), Ctx.boolTy(), Ctx.bv(4)});
  TermRef R = Ctx.var("r", RegTy);
  Solver S(Ctx);
  S.setPresolveEnabled(false);
  S.add(Ctx.mkEq(Ctx.mkTupleGet(R, 0), Ctx.bvConst(8, 77)));
  S.add(Ctx.mkTupleGet(R, 1));
  S.add(Ctx.mkUlt(Ctx.mkTupleGet(R, 2), Ctx.bvConst(4, 3)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  Value RV = S.modelValue(R);
  ASSERT_TRUE(RV.isTuple());
  EXPECT_EQ(RV.elem(0).bits(), 77u);
  EXPECT_TRUE(RV.elem(1).boolValue());
  EXPECT_LT(RV.elem(2).bits(), 3u);
}

TEST_F(SolverTest, CheckWithDoesNotPersist) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkUle(X, Ctx.bvConst(8, 5)));
  EXPECT_EQ(S.checkWith(Ctx.mkUle(Ctx.bvConst(8, 6), X)), SatResult::Unsat);
  EXPECT_EQ(S.check(), SatResult::Sat);
}

//===----------------------------------------------------------------------===
// Differential property test vs brute force
//===----------------------------------------------------------------------===

class RandomTermGen {
public:
  RandomTermGen(TermContext &Ctx, SplitMix64 &Rng) : Ctx(Ctx), Rng(Rng) {
    X = Ctx.var("x", Ctx.bv(4));
    Y = Ctx.var("y", Ctx.bv(4));
    B = Ctx.var("b", Ctx.boolTy());
    R = Ctx.var("r", Ctx.pairTy(Ctx.bv(4), Ctx.boolTy()));
  }

  TermRef X, Y, B, R;

  TermRef genBv(int Depth) {
    if (Depth == 0) {
      switch (Rng.below(4)) {
      case 0:
        return X;
      case 1:
        return Y;
      case 2:
        return Ctx.mkProj1(R);
      default:
        return Ctx.bvConst(4, Rng.below(16));
      }
    }
    switch (Rng.below(12)) {
    case 0:
      return Ctx.mkAdd(genBv(Depth - 1), genBv(Depth - 1));
    case 1:
      return Ctx.mkSub(genBv(Depth - 1), genBv(Depth - 1));
    case 2:
      return Ctx.mkMul(genBv(Depth - 1), genBv(Depth - 1));
    case 3:
      return Ctx.mkUDiv(genBv(Depth - 1), genBv(Depth - 1));
    case 4:
      return Ctx.mkURem(genBv(Depth - 1), genBv(Depth - 1));
    case 5:
      return Ctx.mkBvAnd(genBv(Depth - 1), genBv(Depth - 1));
    case 6:
      return Ctx.mkBvOr(genBv(Depth - 1), genBv(Depth - 1));
    case 7:
      return Ctx.mkBvXor(genBv(Depth - 1), genBv(Depth - 1));
    case 8:
      return Ctx.mkShl(genBv(Depth - 1), genBv(Depth - 1));
    case 9:
      return Ctx.mkLShr(genBv(Depth - 1), genBv(Depth - 1));
    case 10:
      return Ctx.mkAShr(genBv(Depth - 1), genBv(Depth - 1));
    default:
      return Ctx.mkIte(genBool(Depth - 1), genBv(Depth - 1),
                       genBv(Depth - 1));
    }
  }

  TermRef genBool(int Depth) {
    if (Depth == 0) {
      switch (Rng.below(3)) {
      case 0:
        return B;
      case 1:
        return Ctx.mkProj2(R);
      default:
        return Ctx.boolConst(Rng.below(2));
      }
    }
    switch (Rng.below(9)) {
    case 0:
      return Ctx.mkAnd(genBool(Depth - 1), genBool(Depth - 1));
    case 1:
      return Ctx.mkOr(genBool(Depth - 1), genBool(Depth - 1));
    case 2:
      return Ctx.mkNot(genBool(Depth - 1));
    case 3:
      return Ctx.mkEq(genBv(Depth - 1), genBv(Depth - 1));
    case 4:
      return Ctx.mkUlt(genBv(Depth - 1), genBv(Depth - 1));
    case 5:
      return Ctx.mkUle(genBv(Depth - 1), genBv(Depth - 1));
    case 6:
      return Ctx.mkSlt(genBv(Depth - 1), genBv(Depth - 1));
    case 7:
      return Ctx.mkSle(genBv(Depth - 1), genBv(Depth - 1));
    default:
      return Ctx.mkIte(genBool(Depth - 1), genBool(Depth - 1),
                       genBool(Depth - 1));
    }
  }

private:
  TermContext &Ctx;
  SplitMix64 &Rng;
};

TEST(SolverPropertyTest, AgreesWithBruteForceEnumeration) {
  TermContext Ctx;
  SplitMix64 Rng(0xEFC0FFEEull);
  RandomTermGen Gen(Ctx, Rng);

  int SatCount = 0, UnsatCount = 0;
  for (int Iter = 0; Iter < 160; ++Iter) {
    TermRef Phi = Gen.genBool(3);

    // Ground truth by enumeration of all 4+4+1+(4+1) = 14 bits.
    bool AnySat = false;
    for (uint64_t XV = 0; XV < 16 && !AnySat; ++XV)
      for (uint64_t YV = 0; YV < 16 && !AnySat; ++YV)
        for (uint64_t BV = 0; BV < 2 && !AnySat; ++BV)
          for (uint64_t R0 = 0; R0 < 16 && !AnySat; ++R0)
            for (uint64_t R1 = 0; R1 < 2 && !AnySat; ++R1) {
              Env E;
              E.bind(Gen.X, Value::bv(4, XV));
              E.bind(Gen.Y, Value::bv(4, YV));
              E.bind(Gen.B, Value::boolV(BV != 0));
              E.bind(Gen.R, Value::tuple(
                                {Value::bv(4, R0), Value::boolV(R1 != 0)}));
              if (evalTerm(Phi, E).boolValue())
                AnySat = true;
            }

    // Alternate between presolve-enabled and SAT-only configurations.
    Solver S(Ctx);
    S.setPresolveEnabled(Iter % 2 == 0);
    S.add(Phi);
    SatResult R = S.check();
    ASSERT_NE(R, SatResult::Unknown);
    EXPECT_EQ(R == SatResult::Sat, AnySat)
        << "term: " << termToString(Ctx, Phi);

    if (R == SatResult::Sat) {
      ++SatCount;
      // The model must actually satisfy the term.
      Env E;
      E.bind(Gen.X, S.modelValue(Gen.X));
      E.bind(Gen.Y, S.modelValue(Gen.Y));
      E.bind(Gen.B, S.modelValue(Gen.B));
      E.bind(Gen.R, S.modelValue(Gen.R));
      EXPECT_TRUE(evalTerm(Phi, E).boolValue())
          << "model does not satisfy: " << termToString(Ctx, Phi);
    } else {
      ++UnsatCount;
    }
  }
  // Sanity: the generator should produce a mix of both verdicts.
  EXPECT_GT(SatCount, 10);
  EXPECT_GT(UnsatCount, 3);
}

TEST(SolverPropertyTest, ConjunctionsOfRangeGuards) {
  // Shapes that fusion actually produces: conjunctions of range guards over
  // one byte variable, cross-checked against enumeration.
  TermContext Ctx;
  SplitMix64 Rng(42);
  TermRef X = Ctx.var("x", Ctx.bv(8));
  for (int Iter = 0; Iter < 120; ++Iter) {
    TermRef Phi = Ctx.trueConst();
    int NumGuards = 1 + int(Rng.below(4));
    for (int G = 0; G < NumGuards; ++G) {
      uint64_t Lo = Rng.below(256), Hi = Rng.below(256);
      if (Lo > Hi)
        std::swap(Lo, Hi);
      TermRef Guard = Ctx.mkInRange(X, Lo, Hi);
      Phi = Rng.below(2) ? Ctx.mkAnd(Phi, Guard)
                         : Ctx.mkAnd(Phi, Ctx.mkNot(Guard));
    }
    bool AnySat = false;
    for (uint64_t V = 0; V < 256 && !AnySat; ++V) {
      Env E;
      E.bind(X, Value::bv(8, V));
      if (evalTerm(Phi, E).boolValue())
        AnySat = true;
    }
    Solver S(Ctx);
    S.add(Phi);
    EXPECT_EQ(S.check() == SatResult::Sat, AnySat);
  }
}

} // namespace
