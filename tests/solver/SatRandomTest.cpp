//===- tests/solver/SatRandomTest.cpp - Random 3-SAT vs brute force -------===//

#include "solver/SatSolver.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::sat;

namespace {

/// Evaluates a CNF under an assignment bitmask.
bool evalCnf(const std::vector<std::vector<Lit>> &Cnf, uint32_t Bits) {
  for (const auto &Clause : Cnf) {
    bool Ok = false;
    for (Lit L : Clause) {
      bool V = (Bits >> var(L)) & 1;
      if (sign(L))
        V = !V;
      if (V) {
        Ok = true;
        break;
      }
    }
    if (!Ok)
      return false;
  }
  return true;
}

/// Parameter: (number of variables, clause/variable ratio * 10).
class Random3SatTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Random3SatTest, AgreesWithBruteForce) {
  auto [NumVars, Ratio10] = GetParam();
  SplitMix64 Rng(uint64_t(NumVars) * 1000 + uint64_t(Ratio10));
  int NumClauses = NumVars * Ratio10 / 10;

  for (int Iter = 0; Iter < 20; ++Iter) {
    std::vector<std::vector<Lit>> Cnf;
    for (int C = 0; C < NumClauses; ++C) {
      std::vector<Lit> Clause;
      for (int K = 0; K < 3; ++K)
        Clause.push_back(
            mkLit(Var(Rng.below(NumVars)), Rng.below(2) != 0));
      Cnf.push_back(std::move(Clause));
    }

    bool AnySat = false;
    for (uint32_t Bits = 0; Bits < (1u << NumVars) && !AnySat; ++Bits)
      AnySat = evalCnf(Cnf, Bits);

    SatSolver S;
    for (int V = 0; V < NumVars; ++V)
      S.newVar();
    bool Ok = true;
    for (auto &Clause : Cnf)
      Ok = S.addClause(Clause) && Ok;
    SolveStatus R = Ok ? S.solve({}) : SolveStatus::Unsat;
    ASSERT_NE(R, SolveStatus::Budget);
    EXPECT_EQ(R == SolveStatus::Sat, AnySat)
        << "vars=" << NumVars << " clauses=" << NumClauses << " iter="
        << Iter;

    // If Sat: check the model against the CNF.
    if (R == SolveStatus::Sat) {
      uint32_t Bits = 0;
      for (int V = 0; V < NumVars; ++V)
        if (S.modelBool(V))
          Bits |= 1u << V;
      EXPECT_TRUE(evalCnf(Cnf, Bits)) << "model must satisfy the CNF";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VarsTimesRatio, Random3SatTest,
    ::testing::Combine(::testing::Values(6, 10, 14),
                       // Under-constrained, near-threshold (~4.3), and
                       // over-constrained regimes.
                       ::testing::Values(20, 43, 60)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &Info) {
      return "v" + std::to_string(std::get<0>(Info.param)) + "_r" +
             std::to_string(std::get<1>(Info.param));
    });

TEST(SatSolverStress, ManyIncrementalSolvesStayConsistent) {
  // The same solver answering alternating SAT/UNSAT queries via
  // assumptions must never corrupt its state.
  SatSolver S;
  const int N = 24;
  std::vector<Var> X;
  for (int I = 0; I < N; ++I)
    X.push_back(S.newVar());
  // Chain x_i -> x_{i+1}.
  for (int I = 0; I + 1 < N; ++I)
    S.addBinary(~mkLit(X[I]), mkLit(X[I + 1]));
  for (int Round = 0; Round < 50; ++Round) {
    // Assuming x0 and ~x_k is UNSAT for any k > 0.
    int K = 1 + Round % (N - 1);
    EXPECT_EQ(S.solve({mkLit(X[0]), ~mkLit(X[K])}), SolveStatus::Unsat);
    EXPECT_EQ(S.solve({mkLit(X[0])}), SolveStatus::Sat);
    EXPECT_EQ(S.solve({~mkLit(X[K])}), SolveStatus::Sat);
  }
}

} // namespace
