//===- tests/solver/ModelValidationTest.cpp - SAT models vs term Eval -----===//
//
// Every model the solver returns is re-evaluated against the original
// assertions with the reference term evaluator.  This catches drift
// between the bit-blaster's encoding and model extraction — and covers
// all of the solver's Sat sources (interval presolve, concrete-evaluation
// guessing, CDCL), since each must produce a genuine witness.
//
//===----------------------------------------------------------------------===//

#include "solver/Solver.h"
#include "support/Stopwatch.h"
#include "term/Eval.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class QueryGen {
public:
  QueryGen(TermContext &Ctx, SplitMix64 &Rng, unsigned Width)
      : Ctx(Ctx), Rng(Rng), Width(Width) {
    Vars.push_back(Ctx.var("x", Ctx.bv(Width)));
    Vars.push_back(Ctx.var("y", Ctx.bv(Width)));
    Vars.push_back(Ctx.var("z", Ctx.bv(Width)));
  }

  const std::vector<TermRef> &vars() const { return Vars; }

  TermRef arith(int Depth) {
    if (Depth == 0 || Rng.below(3) == 0) {
      if (Rng.below(2))
        return Vars[Rng.below(Vars.size())];
      return Ctx.bvConst(Width, Rng.below(uint64_t(1) << Width));
    }
    TermRef A = arith(Depth - 1), B = arith(Depth - 1);
    switch (Rng.below(6)) {
    case 0:
      return Ctx.mkAdd(A, B);
    case 1:
      return Ctx.mkSub(A, B);
    case 2:
      return Ctx.mkMul(A, B);
    case 3:
      return Ctx.mkBvAnd(A, B);
    case 4:
      return Ctx.mkBvOr(A, B);
    default:
      return Ctx.mkBvXor(A, B);
    }
  }

  TermRef atom() {
    TermRef A = arith(2), B = arith(2);
    switch (Rng.below(5)) {
    case 0:
      return Ctx.mkEq(A, B);
    case 1:
      return Ctx.mkUlt(A, B);
    case 2:
      return Ctx.mkUle(A, B);
    case 3:
      return Ctx.mkSlt(A, B);
    default:
      return Ctx.mkSle(A, B);
    }
  }

  TermRef formula(int Depth) {
    if (Depth == 0)
      return atom();
    switch (Rng.below(3)) {
    case 0:
      return Ctx.mkAnd(formula(Depth - 1), formula(Depth - 1));
    case 1:
      return Ctx.mkOr(formula(Depth - 1), formula(Depth - 1));
    default:
      return Ctx.mkNot(formula(Depth - 1));
    }
  }

private:
  TermContext &Ctx;
  SplitMix64 &Rng;
  unsigned Width;
  std::vector<TermRef> Vars;
};

/// Binds each variable to its model value and re-evaluates every active
/// assertion; all must come out true.
void expectModelSatisfies(Solver &S, const QueryGen &G,
                          const std::vector<TermRef> &Asserts,
                          const char *What) {
  Env E;
  for (TermRef V : G.vars())
    E.bind(V, S.modelValue(V));
  for (size_t I = 0; I < Asserts.size(); ++I) {
    Value V = evalTerm(Asserts[I], E);
    ASSERT_TRUE(V.isBool()) << What;
    EXPECT_TRUE(V.boolValue())
        << What << ": model violates assertion " << I;
  }
}

TEST(ModelValidation, RandomScalarQueries) {
  SplitMix64 Rng(0x50DA);
  unsigned Sats = 0;
  const int Trials = 120;
  for (int T = 0; T < Trials; ++T) {
    TermContext Ctx;
    QueryGen G(Ctx, Rng, Rng.below(2) ? 4 : 8);
    Solver S(Ctx);
    std::vector<TermRef> Asserts;
    size_t N = 1 + Rng.below(3);
    for (size_t I = 0; I < N; ++I) {
      Asserts.push_back(G.formula(2));
      S.add(Asserts.back());
    }
    SatResult R = S.check();
    ASSERT_NE(R, SatResult::Unknown) << "trial " << T;
    if (R == SatResult::Sat) {
      ++Sats;
      expectModelSatisfies(S, G, Asserts, "scalar");
    }
  }
  // The formula space is far from vacuous: a healthy fraction must be Sat
  // or the validation above would not be testing anything.
  EXPECT_GT(Sats, unsigned(Trials / 6));
}

TEST(ModelValidation, ScopedQueriesRevalidateAfterPop) {
  SplitMix64 Rng(0xBADA);
  for (int T = 0; T < 40; ++T) {
    TermContext Ctx;
    QueryGen G(Ctx, Rng, 8);
    Solver S(Ctx);
    std::vector<TermRef> Base = {G.formula(1)};
    S.add(Base[0]);

    S.push();
    TermRef Extra = G.formula(1);
    S.add(Extra);
    if (S.check() == SatResult::Sat) {
      std::vector<TermRef> All = Base;
      All.push_back(Extra);
      expectModelSatisfies(S, G, All, "scoped");
    }
    S.pop();

    // After retraction the base assertions alone constrain the model.
    if (S.check() == SatResult::Sat)
      expectModelSatisfies(S, G, Base, "after-pop");
  }
}

TEST(ModelValidation, TupleProjectionModels) {
  SplitMix64 Rng(0x7071);
  for (int T = 0; T < 30; ++T) {
    TermContext Ctx;
    const Type *PairTy = Ctx.pairTy(Ctx.bv(8), Ctx.bv(8));
    TermRef P = Ctx.var("p", PairTy);
    TermRef P1 = Ctx.mkProj1(P), P2 = Ctx.mkProj2(P);
    Solver S(Ctx);

    std::vector<TermRef> Asserts;
    Asserts.push_back(Ctx.mkUlt(P1, Ctx.bvConst(8, 10 + Rng.below(100))));
    Asserts.push_back(
        Ctx.mkEq(Ctx.mkAdd(P1, P2), Ctx.bvConst(8, Rng.below(256))));
    for (TermRef A : Asserts)
      S.add(A);

    SatResult R = S.check();
    ASSERT_NE(R, SatResult::Unknown);
    if (R != SatResult::Sat)
      continue;
    // Models of tuple variables come back leaf-wise.
    Env E;
    E.bind(P, Value::tuple({S.modelValue(P1), S.modelValue(P2)}));
    for (size_t I = 0; I < Asserts.size(); ++I) {
      Value V = evalTerm(Asserts[I], E);
      ASSERT_TRUE(V.isBool());
      EXPECT_TRUE(V.boolValue()) << "tuple model violates assertion " << I;
    }
  }
}

TEST(ModelValidation, GuessingAndPresolveDisabledAgree) {
  // The same query answered with the fast paths ablated must stay Sat and
  // still return a valid model (the CDCL fallback's extraction path).
  SplitMix64 Rng(0xD15A);
  for (int T = 0; T < 30; ++T) {
    TermContext Ctx;
    QueryGen G(Ctx, Rng, 4);
    TermRef F = G.formula(2);

    Solver Fast(Ctx);
    Fast.add(F);
    SatResult RFast = Fast.check();

    Solver Slow(Ctx);
    Slow.setPresolveEnabled(false);
    Slow.setGuessingEnabled(false);
    Slow.add(F);
    SatResult RSlow = Slow.check();

    ASSERT_NE(RFast, SatResult::Unknown);
    ASSERT_NE(RSlow, SatResult::Unknown);
    EXPECT_EQ(RFast == SatResult::Sat, RSlow == SatResult::Sat)
        << "trial " << T;
    if (RSlow == SatResult::Sat)
      expectModelSatisfies(Slow, G, {F}, "ablated");
  }
}

} // namespace
