//===- tests/solver/IntervalTest.cpp - Presolve tests ---------------------===//

#include "solver/Interval.h"
#include "solver/Solver.h"
#include "support/Stopwatch.h"
#include "term/Eval.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class IntervalTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(IntervalTest, DisjointRangesAreUnsatWithoutSatCall) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkInRange(X, 0x30, 0x39));
  S.add(Ctx.mkInRange(X, 0x80, 0xBF));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(S.stats().FastUnsat, 1u);
  EXPECT_EQ(S.stats().SatCalls, 0u);
}

TEST_F(IntervalTest, OverlappingRangesAreSatWithoutSatCall) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkInRange(X, 0x30, 0x39));
  S.add(Ctx.mkInRange(X, 0x35, 0xBF));
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.stats().FastSat, 1u);
  EXPECT_EQ(S.stats().SatCalls, 0u);
  // The presolve model must satisfy both ranges.
  uint64_t V = S.modelValue(X).bits();
  EXPECT_GE(V, 0x35u);
  EXPECT_LE(V, 0x39u);
}

TEST_F(IntervalTest, ArithmeticPropagation) {
  // x in [0x30,0x39]  =>  x - 0x30 in [0,9]  =>  (x - 0x30) <= 9 is True.
  TermRef X = Ctx.var("x", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkInRange(X, 0x30, 0x39));
  S.add(Ctx.mkUle(Ctx.mkSub(X, Ctx.bvConst(8, 0x30)), Ctx.bvConst(8, 9)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.stats().SatCalls, 0u);
}

TEST_F(IntervalTest, BooleanFlagPinning) {
  TermRef B = Ctx.var("b", Ctx.boolTy());
  Solver S(Ctx);
  S.add(B);
  S.add(Ctx.mkNot(B));
  EXPECT_EQ(S.check(), SatResult::Unsat);
  EXPECT_EQ(S.stats().SatCalls, 0u);
}

TEST_F(IntervalTest, FallsThroughToSatWhenUnknown) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  Solver S(Ctx);
  S.setGuessingEnabled(false); // force the CDCL fallback path
  S.add(Ctx.mkEq(Ctx.mkBvXor(X, Y), Ctx.bvConst(8, 0xFF)));
  EXPECT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.stats().SatCalls, 1u);
}

TEST_F(IntervalTest, GuessingFindsWitnessWithoutCdcl) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  Solver S(Ctx);
  S.add(Ctx.mkEq(Ctx.mkBvXor(X, Y), Ctx.bvConst(8, 0xFF)));
  ASSERT_EQ(S.check(), SatResult::Sat);
  EXPECT_EQ(S.stats().GuessSat, 1u);
  EXPECT_EQ(S.stats().SatCalls, 0u);
  // And the guessed model must satisfy the assertion.
  uint64_t XV = S.modelValue(X).bits();
  uint64_t YV = S.modelValue(Y).bits();
  EXPECT_EQ((XV ^ YV) & 0xFF, 0xFFu);
}

TEST_F(IntervalTest, PresolveNeverContradictsSat) {
  // Differential: random conjunctions where presolve answers must agree
  // with the SAT-only configuration.
  TermContext Ctx2;
  TermRef X = Ctx2.var("x", Ctx2.bv(8));
  TermRef Y = Ctx2.var("y", Ctx2.bv(8));
  SplitMix64 Rng(7);
  for (int Iter = 0; Iter < 60; ++Iter) {
    std::vector<TermRef> Asserts;
    int N = 1 + int(Rng.below(3));
    for (int I = 0; I < N; ++I) {
      TermRef V = Rng.below(2) ? X : Y;
      uint64_t Lo = Rng.below(256), Hi = Rng.below(256);
      if (Lo > Hi)
        std::swap(Lo, Hi);
      TermRef T = Ctx2.mkInRange(V, Lo, Hi);
      if (Rng.below(4) == 0)
        T = Ctx2.mkEq(Ctx2.mkAdd(X, Y), Ctx2.bvConst(8, Rng.below(256)));
      Asserts.push_back(T);
    }
    Solver Fast(Ctx2), Slow(Ctx2);
    Slow.setPresolveEnabled(false);
    for (TermRef A : Asserts) {
      Fast.add(A);
      Slow.add(A);
    }
    EXPECT_EQ(Fast.check(), Slow.check());
  }
}

} // namespace
