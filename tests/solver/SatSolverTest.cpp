//===- tests/solver/SatSolverTest.cpp - CDCL core tests -------------------===//

#include "solver/SatSolver.h"

#include <gtest/gtest.h>

using namespace efc::sat;

namespace {

TEST(SatSolverTest, EmptyProblemIsSat) {
  SatSolver S;
  EXPECT_EQ(S.solve({}), SolveStatus::Sat);
}

TEST(SatSolverTest, UnitPropagation) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addUnit(mkLit(A));
  S.addBinary(~mkLit(A), mkLit(B));
  ASSERT_EQ(S.solve({}), SolveStatus::Sat);
  EXPECT_TRUE(S.modelBool(A));
  EXPECT_TRUE(S.modelBool(B));
}

TEST(SatSolverTest, SimpleUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addUnit(mkLit(A));
  EXPECT_FALSE(S.addUnit(~mkLit(A)));
  EXPECT_EQ(S.solve({}), SolveStatus::Unsat);
}

TEST(SatSolverTest, RequiresConflictAnalysis) {
  // (a | b) & (a | ~b) & (~a | c) & (~a | ~c) is unsat.
  SatSolver S;
  Var A = S.newVar(), B = S.newVar(), C = S.newVar();
  S.addBinary(mkLit(A), mkLit(B));
  S.addBinary(mkLit(A), ~mkLit(B));
  S.addBinary(~mkLit(A), mkLit(C));
  S.addBinary(~mkLit(A), ~mkLit(C));
  EXPECT_EQ(S.solve({}), SolveStatus::Unsat);
}

TEST(SatSolverTest, AssumptionsRestrictWithoutPersisting) {
  SatSolver S;
  Var A = S.newVar(), B = S.newVar();
  S.addBinary(mkLit(A), mkLit(B));
  EXPECT_EQ(S.solve({~mkLit(A), ~mkLit(B)}), SolveStatus::Unsat);
  // Same solver, no assumptions: still satisfiable.
  EXPECT_EQ(S.solve({}), SolveStatus::Sat);
  // One-sided assumption: model must respect it.
  ASSERT_EQ(S.solve({~mkLit(A)}), SolveStatus::Sat);
  EXPECT_FALSE(S.modelBool(A));
  EXPECT_TRUE(S.modelBool(B));
}

TEST(SatSolverTest, PigeonholeThreeIntoTwoIsUnsat) {
  // Pigeons p in 0..2, holes h in 0..1; var(p,h) = p*2+h.
  SatSolver S;
  for (int I = 0; I < 6; ++I)
    S.newVar();
  auto V = [](int P, int H) { return mkLit(P * 2 + H); };
  for (int P = 0; P < 3; ++P)
    S.addBinary(V(P, 0), V(P, 1));
  for (int H = 0; H < 2; ++H)
    for (int P1 = 0; P1 < 3; ++P1)
      for (int P2 = P1 + 1; P2 < 3; ++P2)
        S.addBinary(~V(P1, H), ~V(P2, H));
  EXPECT_EQ(S.solve({}), SolveStatus::Unsat);
}

TEST(SatSolverTest, PigeonholeFiveIntoFourIsUnsat) {
  SatSolver S;
  const int P = 5, H = 4;
  for (int I = 0; I < P * H; ++I)
    S.newVar();
  auto V = [&](int Pi, int Hi) { return mkLit(Pi * H + Hi); };
  for (int Pi = 0; Pi < P; ++Pi) {
    std::vector<Lit> Cl;
    for (int Hi = 0; Hi < H; ++Hi)
      Cl.push_back(V(Pi, Hi));
    S.addClause(Cl);
  }
  for (int Hi = 0; Hi < H; ++Hi)
    for (int P1 = 0; P1 < P; ++P1)
      for (int P2 = P1 + 1; P2 < P; ++P2)
        S.addBinary(~V(P1, Hi), ~V(P2, Hi));
  EXPECT_EQ(S.solve({}), SolveStatus::Unsat);
  EXPECT_GT(S.numConflicts(), 0u);
}

TEST(SatSolverTest, ParityChainSat) {
  // x0 xor x1 = 1, x1 xor x2 = 1, ..., forced chain; check model parity.
  SatSolver S;
  const int N = 20;
  std::vector<Var> X;
  for (int I = 0; I < N; ++I)
    X.push_back(S.newVar());
  for (int I = 0; I + 1 < N; ++I) {
    // xor(x_i, x_{i+1}) = true: (a | b) & (~a | ~b)
    S.addBinary(mkLit(X[I]), mkLit(X[I + 1]));
    S.addBinary(~mkLit(X[I]), ~mkLit(X[I + 1]));
  }
  S.addUnit(mkLit(X[0]));
  ASSERT_EQ(S.solve({}), SolveStatus::Sat);
  for (int I = 0; I < N; ++I)
    EXPECT_EQ(S.modelBool(X[I]), I % 2 == 0) << "position " << I;
}

TEST(SatSolverTest, ConflictBudgetReportsBudget) {
  // A hard pigeonhole with a tiny budget should give Budget, not a wrong
  // answer.
  SatSolver S;
  const int P = 8, H = 7;
  for (int I = 0; I < P * H; ++I)
    S.newVar();
  auto V = [&](int Pi, int Hi) { return mkLit(Pi * H + Hi); };
  for (int Pi = 0; Pi < P; ++Pi) {
    std::vector<Lit> Cl;
    for (int Hi = 0; Hi < H; ++Hi)
      Cl.push_back(V(Pi, Hi));
    S.addClause(Cl);
  }
  for (int Hi = 0; Hi < H; ++Hi)
    for (int P1 = 0; P1 < P; ++P1)
      for (int P2 = P1 + 1; P2 < P; ++P2)
        S.addBinary(~V(P1, Hi), ~V(P2, Hi));
  SolveStatus R = S.solve({}, /*ConflictBudget=*/5);
  EXPECT_TRUE(R == SolveStatus::Budget || R == SolveStatus::Unsat);
}

} // namespace
