//===- tests/frontends/ComprehensionTest.cpp - §5.1 frontend tests --------===//

#include "bst/BstPrint.h"
#include "bst/Interp.h"
#include "bst/Transform.h"
#include "frontends/comprehension/Comprehension.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::fe;

namespace {

class ComprehensionTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

/// The paper's Example 5.1: ToInt written imperatively.
Bst buildToIntComprehension(TermContext &Ctx, Solver &S,
                            bool Explore = true) {
  ComprehensionBuilder B(Ctx, Ctx.charTy(), Ctx.intTy());
  TermRef I = B.field("i", Ctx.intTy(), Value::bv(32, 0));
  TermRef Defined = B.field("defined", Ctx.boolTy(), Value::boolV(false));
  TermRef X = B.input();

  B.update(block({
      ifS(Ctx.mkInRange(X, 0x30, 0x39),
          set(I, Ctx.mkAdd(Ctx.mkMul(Ctx.bvConst(32, 10), I),
                           Ctx.mkSub(Ctx.mkZExt(X, 32),
                                     Ctx.bvConst(32, 0x30)))),
          reject()),
      set(Defined, Ctx.trueConst()),
  }));
  B.finish(block({
      ifS(Ctx.mkNot(Defined), reject()),
      emit(I),
  }));
  ComprehensionBuilder::BuildOptions Opts;
  Opts.Explore = Explore;
  return B.build(S, Opts);
}

TEST_F(ComprehensionTest, Example51ToInt) {
  Solver S(Ctx);
  Bst A = buildToIntComprehension(Ctx, S);
  EXPECT_TRUE(A.wellFormed());
  // Finite exploration of `defined` reproduces Figure 4(b): two control
  // states, int register.
  EXPECT_EQ(A.numStates(), 2u) << bstToString(A);
  EXPECT_EQ(A.registerType(), Ctx.intTy());

  auto Out = runBst(A, lib::valuesFromAscii("1234"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 1234u);
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("12a")).has_value());
}

TEST_F(ComprehensionTest, MatchesHandWrittenToInt) {
  Solver S(Ctx);
  Bst FromEdsl = buildToIntComprehension(Ctx, S);
  Bst HandMade = lib::makeToInt(Ctx);
  for (const char *In : {"", "0", "42", "999999", "1x", "x"}) {
    auto A = runBst(FromEdsl, lib::valuesFromAscii(In));
    auto B = runBst(HandMade, lib::valuesFromAscii(In));
    ASSERT_EQ(A.has_value(), B.has_value()) << In;
    if (A)
      EXPECT_EQ(*A, *B) << In;
  }
}

TEST_F(ComprehensionTest, WithoutExplorationKeepsOneState) {
  Solver S(Ctx);
  Bst A = buildToIntComprehension(Ctx, S, /*Explore=*/false);
  EXPECT_EQ(A.numStates(), 1u);
  ASSERT_TRUE(A.registerType()->isTuple());
  EXPECT_EQ(A.registerType()->arity(), 2u);
  // Same behaviour regardless.
  auto Out = runBst(A, lib::valuesFromAscii("77"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 77u);
}

TEST_F(ComprehensionTest, PartialUpdatesKeepOtherFields) {
  // Two counters; each input updates only one of them (the paper's
  // motivation for encapsulated partial state updates vs Aggregate).
  Solver S(Ctx);
  ComprehensionBuilder B(Ctx, Ctx.charTy(), Ctx.intTy());
  TermRef Vowels = B.field("vowels", Ctx.intTy(), Value::bv(32, 0));
  TermRef Others = B.field("others", Ctx.intTy(), Value::bv(32, 0));
  TermRef X = B.input();
  TermRef IsVowel = Ctx.mkOr(
      Ctx.mkEq(X, Ctx.bvConst(16, 'a')),
      Ctx.mkOr(Ctx.mkEq(X, Ctx.bvConst(16, 'e')),
               Ctx.mkEq(X, Ctx.bvConst(16, 'o'))));
  B.update(ifS(IsVowel, set(Vowels, Ctx.mkAdd(Vowels, Ctx.bvConst(32, 1))),
               set(Others, Ctx.mkAdd(Others, Ctx.bvConst(32, 1)))));
  B.finish(block({emit(Vowels), emit(Others)}));
  Bst A = B.build(S);
  auto Out = runBst(A, lib::valuesFromAscii("banana"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 3u);
  EXPECT_EQ((*Out)[1].bits(), 3u);
}

TEST_F(ComprehensionTest, InfeasiblePathsArePruned) {
  // Nested contradictory guards: the inner then-branch is unreachable and
  // must not survive as a branch.
  Solver S(Ctx);
  ComprehensionBuilder B(Ctx, Ctx.byteTy(), Ctx.byteTy());
  TermRef X = B.input();
  B.update(ifS(Ctx.mkUle(X, Ctx.bvConst(8, 10)),
               ifS(Ctx.mkUle(Ctx.bvConst(8, 20), X),
                   emit(Ctx.bvConst(8, 1)), // infeasible
                   emit(Ctx.bvConst(8, 2))),
               emit(Ctx.bvConst(8, 3))));
  Bst A = B.build(S);
  // Expect exactly 2 reachable base leaves in delta (plus default accept
  // finalizer).
  EXPECT_EQ(A.delta(0)->countBaseLeaves(), 2u) << bstToString(A);
}

TEST_F(ComprehensionTest, DefaultFinishAccepts) {
  Solver S(Ctx);
  ComprehensionBuilder B(Ctx, Ctx.byteTy(), Ctx.byteTy());
  TermRef X = B.input();
  B.update(emit(X));
  Bst A = B.build(S);
  auto Out = runBst(A, lib::valuesFromBytes("ab"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::bytesFromValues(*Out), "ab");
}

TEST_F(ComprehensionTest, EmitOrderFollowsStatementOrder) {
  Solver S(Ctx);
  ComprehensionBuilder B(Ctx, Ctx.byteTy(), Ctx.byteTy());
  TermRef X = B.input();
  B.update(block({emit(Ctx.mkAdd(X, Ctx.bvConst(8, 1))), emit(X),
                  emit(Ctx.bvConst(8, 0))}));
  Bst A = B.build(S);
  auto Out = runBst(A, lib::valuesFromBytes("a"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 3u);
  EXPECT_EQ((*Out)[0].bits(), uint64_t('a') + 1);
  EXPECT_EQ((*Out)[1].bits(), uint64_t('a'));
  EXPECT_EQ((*Out)[2].bits(), 0u);
}

TEST_F(ComprehensionTest, SetThenUseSeesNewValue) {
  Solver S(Ctx);
  ComprehensionBuilder B(Ctx, Ctx.byteTy(), Ctx.byteTy());
  TermRef Acc = B.field("acc", Ctx.byteTy(), Value::bv(8, 0));
  TermRef X = B.input();
  B.update(block({set(Acc, Ctx.mkAdd(Acc, X)), emit(Acc)}));
  Bst A = B.build(S);
  auto Out = runBst(A, lib::valuesFromBytes("\x01\x02\x03"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 1u);
  EXPECT_EQ((*Out)[1].bits(), 3u);
  EXPECT_EQ((*Out)[2].bits(), 6u);
}

TEST_F(ComprehensionTest, ExplorationOfWindowedAverageFullFlag) {
  // The windowed average's `full` flag depends on `pos`; exploring both
  // (pos is enum-like: 0..W-1) splits them into control states — the
  // §5.1 register→control-state migration for enum/bool components.
  Solver S(Ctx);
  Bst A = lib::makeWindowedAverage(Ctx, 3);
  // Flattened register: slot0..2, sum, pos (index 4), full (index 5).
  Bst E = exploreFiniteRegisters(A, S, {4});
  EXPECT_GT(E.numStates(), A.numStates());
  // Behaviour preserved.
  std::vector<Value> In = lib::valuesFromInts({9, 3, 6, 30, 3});
  auto Before = runBst(A, In);
  auto After = runBst(E, In);
  ASSERT_TRUE(Before && After);
  EXPECT_EQ(*Before, *After);
}

} // namespace
