//===- tests/frontends/RegexTest.cpp - Regex frontend tests (§5.2) --------===//

#include "bst/Interp.h"
#include "frontends/regex/RegexFrontend.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::fe;

namespace {

class RegexTest : public ::testing::Test {
protected:
  TermContext Ctx;

  /// Builds a matcher-only BST and reports acceptance.
  bool matches(const std::string &Pattern, const std::string &Input) {
    RegexBstResult R = buildRegexBst(Ctx, Pattern, {});
    EXPECT_TRUE(R.Result.has_value()) << R.Error;
    if (!R.Result)
      return false;
    return runBst(*R.Result, lib::valuesFromAscii(Input)).has_value();
  }
};

TEST_F(RegexTest, CharClassAlgebra) {
  CharClass Digits = CharClass::range('0', '9');
  CharClass Lower = CharClass::range('a', 'z');
  EXPECT_TRUE(Digits.contains('5'));
  EXPECT_FALSE(Digits.contains('a'));
  CharClass U = Digits.unionWith(Lower);
  EXPECT_EQ(U.size(), 36u);
  EXPECT_TRUE(U.complement().contains('A'));
  EXPECT_FALSE(U.complement().contains('5'));
  EXPECT_TRUE(Digits.intersectWith(Lower).isEmpty());
  // Adjacent ranges merge.
  CharClass Merged =
      CharClass::range('a', 'm').unionWith(CharClass::range('n', 'z'));
  EXPECT_EQ(Merged.ranges().size(), 1u);
}

TEST_F(RegexTest, BasicMatching) {
  EXPECT_TRUE(matches("abc", "abc"));
  EXPECT_FALSE(matches("abc", "abd"));
  EXPECT_FALSE(matches("abc", "ab"));
  EXPECT_FALSE(matches("abc", "abcd"));
  EXPECT_TRUE(matches("a*", ""));
  EXPECT_TRUE(matches("a*", "aaaa"));
  EXPECT_FALSE(matches("a+", ""));
  EXPECT_TRUE(matches("a+", "a"));
  EXPECT_TRUE(matches("a?b", "b"));
  EXPECT_TRUE(matches("a?b", "ab"));
  EXPECT_TRUE(matches("a|bc", "bc"));
  EXPECT_TRUE(matches("(?:ab)+", "ababab"));
  EXPECT_FALSE(matches("(?:ab)+", "aba"));
}

TEST_F(RegexTest, ClassesAndEscapes) {
  EXPECT_TRUE(matches("\\d+", "0123"));
  EXPECT_FALSE(matches("\\d+", "12a"));
  EXPECT_TRUE(matches("[a-z]+", "hello"));
  EXPECT_FALSE(matches("[a-z]+", "heLlo"));
  EXPECT_TRUE(matches("[^,\\n]*", "abc def"));
  EXPECT_FALSE(matches("[^,]*", "ab,cd"));
  EXPECT_TRUE(matches("\\w+\\s\\w+", "foo bar"));
  EXPECT_TRUE(matches("a.c", "axc"));
  EXPECT_FALSE(matches("a.c", "a\nc")) << "dot excludes newline";
  EXPECT_TRUE(matches("\\x41+", "AAA"));
  EXPECT_TRUE(matches("\\u0041", "A"));
}

TEST_F(RegexTest, CountedRepetition) {
  EXPECT_TRUE(matches("a{3}", "aaa"));
  EXPECT_FALSE(matches("a{3}", "aa"));
  EXPECT_TRUE(matches("a{2,4}", "aaa"));
  EXPECT_FALSE(matches("a{2,4}", "aaaaa"));
  EXPECT_TRUE(matches("(?:[^,]*,){2}x", "a,bb,x"));
  EXPECT_TRUE(matches("a{2,}", "aaaaaa"));
  EXPECT_FALSE(matches("a{2,}", "a"));
}

TEST_F(RegexTest, ParseErrors) {
  std::string Err;
  EXPECT_FALSE(parseRegex("a(b", &Err).has_value());
  EXPECT_FALSE(parseRegex("[z-a]", &Err).has_value());
  EXPECT_FALSE(parseRegex("a{4,2}", &Err).has_value());
  EXPECT_FALSE(parseRegex("*a", &Err).has_value());
}

TEST_F(RegexTest, SingleCaptureToInt) {
  // Example 5.2 reduced: one int column per line.
  Bst ToInt = lib::makeToInt(Ctx);
  RegexBstResult R = buildRegexBst(
      Ctx, "(?:(?<int>\\d+)\\n)*", {{"int", &ToInt}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  EXPECT_TRUE(R.Result->wellFormed());

  auto Out = runBst(*R.Result, lib::valuesFromAscii("12\n7\n999\n"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 3u);
  EXPECT_EQ((*Out)[0].bits(), 12u);
  EXPECT_EQ((*Out)[1].bits(), 7u);
  EXPECT_EQ((*Out)[2].bits(), 999u);

  EXPECT_FALSE(
      runBst(*R.Result, lib::valuesFromAscii("12\nx\n")).has_value());
  // Empty input: zero iterations of the loop, accepted, no output.
  auto Empty = runBst(*R.Result, lib::valuesFromAscii(""));
  ASSERT_TRUE(Empty.has_value());
  EXPECT_TRUE(Empty->empty());
}

TEST_F(RegexTest, PaperExample52CsvColumns) {
  // The paper's Example 5.2: third column as int, fourth as bool.
  Bst ToInt = lib::makeToInt(Ctx);
  Bst ToBool = lib::makeToBool(Ctx);
  RegexBstResult R = buildRegexBst(
      Ctx, "(?:(?:[^,\\n]*,){2}(?<int>\\d+),(?<bool>\\w+),[^\\n]*\\n)*",
      {{"int", &ToInt}, {"bool", &ToBool}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  EXPECT_TRUE(R.Result->wellFormed());

  std::string Csv = "a,b,42,true,rest\n"
                    "x,,7,false,\n"
                    "p,q,1000,true,zz\n";
  auto Out = runBst(*R.Result, lib::valuesFromAscii(Csv));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 6u);
  EXPECT_EQ((*Out)[0].bits(), 42u);
  EXPECT_EQ((*Out)[1].bits(), 1u);
  EXPECT_EQ((*Out)[2].bits(), 7u);
  EXPECT_EQ((*Out)[3].bits(), 0u);
  EXPECT_EQ((*Out)[4].bits(), 1000u);
  EXPECT_EQ((*Out)[5].bits(), 1u);
}

TEST_F(RegexTest, CsvColumnExtractionSixthColumn) {
  // The SBO-employees pattern from §6.
  Bst ToInt = lib::makeToInt(Ctx);
  RegexBstResult R = buildRegexBst(
      Ctx, "(?:(?:[^,\\n]*,){5}(?<value>\\d+),[^\\n]*\\n)*",
      {{"value", &ToInt}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  std::string Csv = "a,b,c,d,e,123,f,g\n"
                    ",,,,,88,\n";
  auto Out = runBst(*R.Result, lib::valuesFromAscii(Csv));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].bits(), 123u);
  EXPECT_EQ((*Out)[1].bits(), 88u);
}

TEST_F(RegexTest, CaptureAtEndOfInputRunsFinalizer) {
  Bst ToInt = lib::makeToInt(Ctx);
  RegexBstResult R =
      buildRegexBst(Ctx, "v=(?<int>\\d+)", {{"int", &ToInt}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  auto Out = runBst(*R.Result, lib::valuesFromAscii("v=314"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 1u);
  EXPECT_EQ((*Out)[0].bits(), 314u);
}

TEST_F(RegexTest, AdjacentCaptures) {
  // Capture ends exactly where the next begins (digit then letters).
  Bst ToInt = lib::makeToInt(Ctx);
  Bst Len = [&] {
    // Count chars of the second capture.
    Bst A(Ctx, Ctx.bv(16), Ctx.bv(32), Ctx.bv(32), 1, 0, Value::bv(32, 0));
    A.setDelta(0, Rule::base({}, 0,
                             Ctx.mkAdd(A.regVar(), Ctx.bvConst(32, 1))));
    A.setFinalizer(0, Rule::base({A.regVar()}, 0, Ctx.bvConst(32, 0)));
    return A;
  }();
  RegexBstResult R = buildRegexBst(
      Ctx, "(?<num>\\d+)(?<word>[a-z]+)", {{"num", &ToInt}, {"word", &Len}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  auto Out = runBst(*R.Result, lib::valuesFromAscii("42abc"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].bits(), 42u);
  EXPECT_EQ((*Out)[1].bits(), 3u);
}

TEST_F(RegexTest, CaptureRegisterResetsBetweenMatches) {
  // Without per-match reinitialization the second number would parse as
  // 12 * 10 + 7 etc.
  Bst ToInt = lib::makeToInt(Ctx);
  RegexBstResult R = buildRegexBst(
      Ctx, "(?:(?<int>\\d+);)*", {{"int", &ToInt}});
  ASSERT_TRUE(R.Result.has_value()) << R.Error;
  auto Out = runBst(*R.Result, lib::valuesFromAscii("12;7;"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].bits(), 12u);
  EXPECT_EQ((*Out)[1].bits(), 7u);
}

TEST_F(RegexTest, AmbiguousCaptureBoundaryIsRejected) {
  Bst ToInt = lib::makeToInt(Ctx);
  // A digit could extend the capture or belong to the skip suffix \d*.
  RegexBstResult R =
      buildRegexBst(Ctx, "(?<int>\\d+)\\d*x", {{"int", &ToInt}});
  EXPECT_FALSE(R.Result.has_value());
  EXPECT_FALSE(R.Error.empty());
}

TEST_F(RegexTest, UnboundCaptureNameIsAnError) {
  RegexBstResult R = buildRegexBst(Ctx, "(?<v>\\d+)", {});
  EXPECT_FALSE(R.Result.has_value());
  EXPECT_NE(R.Error.find("v"), std::string::npos);
}

TEST_F(RegexTest, MatcherRejectsPartialMatches) {
  // Whole-input semantics: the pattern must cover the entire input.
  EXPECT_TRUE(matches("[ab]*c", "abac"));
  EXPECT_FALSE(matches("[ab]*c", "abacx"));
  EXPECT_FALSE(matches("[ab]*c", "xabac"));
}

} // namespace
