//===- tests/frontends/XPathTest.cpp - XPath frontend tests (§5.3) --------===//

#include "bst/Interp.h"
#include "frontends/xpath/XPathFrontend.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::fe;

namespace {

class XPathTest : public ::testing::Test {
protected:
  TermContext Ctx;

  std::optional<std::vector<uint32_t>> extract(const std::string &Query,
                                               const std::string &Xml) {
    Bst ToInt = lib::makeToInt(Ctx);
    XPathBstResult R = buildXPathBst(Ctx, Query, ToInt);
    EXPECT_TRUE(R.Result.has_value()) << R.Error;
    if (!R.Result)
      return std::nullopt;
    auto Out = runBst(*R.Result, lib::valuesFromAscii(Xml));
    if (!Out)
      return std::nullopt;
    return lib::intsFromValues(*Out);
  }
};

TEST_F(XPathTest, PaperExample53Cities) {
  // The paper's Example 5.3: st:int(/cities/city/population).
  std::string Xml = "<cities>"
                    "<city name='Roslyn'>"
                    "<timezone>PST</timezone>"
                    "<population>893</population>"
                    "</city>"
                    "<city name='Santa Barbara'>"
                    "<population>88410</population>"
                    "</city>"
                    "</cities>";
  auto Out = extract("/cities/city/population", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{893, 88410}));
}

TEST_F(XPathTest, IgnoresDeeplyNestedNonMatching) {
  // Non-matching subtrees of arbitrary depth are skipped via the counting
  // register, including elements that repeat the queried tag names deeper
  // down (absolute-path semantics).
  std::string Xml =
      "<a><x><y><z><b>111</b><population>5</population></z></y></x>"
      "<b>7</b>"
      "<b>4<c><c><c>deep</c></c></c>2</b>"
      "</a>";
  auto Out = extract("/a/b", Xml);
  ASSERT_TRUE(Out.has_value());
  // The nested <b>111</b> is not matched; the last <b> contributes its
  // direct text "4" and "2" around the skipped subtree, parsing as 42.
  EXPECT_EQ(*Out, (std::vector<uint32_t>{7, 42}));
}

TEST_F(XPathTest, DirectTextOnlyAndDepthCounting) {
  std::string Xml = "<a>"
                    "<b>7</b>"
                    "<skip><b>999</b><d><e>5</e></d></skip>"
                    "<b>42</b>"
                    "</a>";
  auto Out = extract("/a/b", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{7, 42}))
      << "nested <b> inside <skip> must not match";
}

TEST_F(XPathTest, AttributesAreSkipped) {
  std::string Xml = "<r><v unit='k' id=\"3\">10</v><v a='<'>20</v></r>";
  // Note: '<' inside quotes is outside our subset; use a clean variant.
  Xml = "<r><v unit='k' id=\"3\">10</v><v>20</v></r>";
  auto Out = extract("/r/v", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{10, 20}));
}

TEST_F(XPathTest, XmlPrologAndDeclarations) {
  std::string Xml = "<?xml version='1.0'?><!DOCTYPE r>"
                    "<r><v>5</v></r>";
  auto Out = extract("/r/v", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{5}));
}

TEST_F(XPathTest, SelfClosingForeignElements) {
  std::string Xml = "<r><pad/><v>5</v><pad attr='1'/><v>6</v></r>";
  auto Out = extract("/r/v", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{5, 6}));
}

TEST_F(XPathTest, SimilarTagNamesDisambiguate) {
  // "value" vs "val" vs "values": prefix overlaps both ways.
  std::string Xml = "<r><val>111</val><value>7</value>"
                    "<values>222</values><value>8</value></r>";
  auto Out = extract("/r/value", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{7, 8}));
}

TEST_F(XPathTest, RejectsContentFailingSubTransducer) {
  std::string Xml = "<r><v>12a</v></r>";
  EXPECT_FALSE(extract("/r/v", Xml).has_value());
  std::string Xml2 = "<r><v></v></r>"; // empty content: ToInt rejects
  EXPECT_FALSE(extract("/r/v", Xml2).has_value());
}

TEST_F(XPathTest, RejectsTruncatedDocument) {
  EXPECT_FALSE(extract("/r/v", "<r><v>5</v>").has_value());
  EXPECT_FALSE(extract("/r/v", "<r><v>5").has_value());
}

TEST_F(XPathTest, WhitespaceBetweenElements) {
  std::string Xml = "<r>\n  <v>5</v>\n  <v>6</v>\n</r>\n";
  // Trailing newline after </r> is top-level text; our Content(0) skips
  // any text outside the root, so this accepts.
  auto Out = extract("/r/v", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{5, 6}));
}

TEST_F(XPathTest, DeepPathQuery) {
  std::string Xml = "<l1><l2><l3><l4>99</l4></l3>"
                    "<l3><l4>100</l4><other><l4>1</l4></other></l3>"
                    "</l2></l1>";
  auto Out = extract("/l1/l2/l3/l4", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(*Out, (std::vector<uint32_t>{99, 100}));
}

TEST_F(XPathTest, QueryValidation) {
  Bst ToInt = lib::makeToInt(Ctx);
  EXPECT_FALSE(buildXPathBst(Ctx, "", ToInt).Result.has_value());
  EXPECT_FALSE(buildXPathBst(Ctx, "cities", ToInt).Result.has_value());
  EXPECT_FALSE(buildXPathBst(Ctx, "//x", ToInt).Result.has_value());
}

TEST_F(XPathTest, AverageOverMatches) {
  // Content transducer emits per match; a downstream fold would consume
  // them — here just check multiplicity.
  std::string Xml = "<p><q>1</q><q>2</q><q>3</q><q>4</q></p>";
  auto Out = extract("/p/q", Xml);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(Out->size(), 4u);
}

} // namespace
