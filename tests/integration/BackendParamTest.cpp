//===- tests/integration/BackendParamTest.cpp - Pipelines x backends ------===//
//
// TEST_P sweep: every benchmark pipeline is executed by every backend
// (reference interpreter via the pull/push variants, the bytecode VM,
// the byte-class fast path, and the dlopen'd native code) on its
// synthetic dataset; all outputs must be identical.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "bst/BstPrint.h"
#include "data/Datasets.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::bench;

namespace {

struct PipelineCase {
  const char *Name;
  BuiltPipeline (*Make)();
  std::vector<uint64_t> (*Input)();
};

std::vector<uint64_t> sboInput() {
  return rawOfBytes(data::makeSboCsv(61, 24 * 1024, 5));
}
std::vector<uint64_t> chsiInput() {
  return rawOfBytes(data::makeChsiCsv(62, 24 * 1024, 3));
}
std::vector<uint64_t> ccInput() {
  return rawOfBytes(data::makeCcCsv(63, 24 * 1024));
}
std::vector<uint64_t> csvInput() {
  return rawOfBytes(data::makeCsv(64, 24 * 1024, 6, 4, 9999));
}
std::vector<uint64_t> base64Input() {
  return rawOfBytes(data::makeBase64Ints(65, 2048, 1u << 28));
}
std::vector<uint64_t> englishInput() {
  return rawOfBytes(data::makeEnglishText(66, 24 * 1024));
}
std::vector<uint64_t> tpcInput() {
  return rawOfBytes(data::makeTpcDiXml(67, 24 * 1024));
}
std::vector<uint64_t> pirInput() {
  return rawOfBytes(data::makePirXml(68, 24 * 1024));
}
std::vector<uint64_t> dblpInput() {
  return rawOfBytes(data::makeDblpXml(69, 24 * 1024));
}
std::vector<uint64_t> mondialInput() {
  return rawOfBytes(data::makeMondialXml(70, 24 * 1024));
}
std::vector<uint64_t> randomUtf16Input() {
  return rawOfChars(data::makeRandomUtf16(71, 12 * 1024, true));
}

const PipelineCase Cases[] = {
    {"Base64_avg", &makeBase64AvgPipeline, &base64Input},
    {"Base64_delta", &makeBase64DeltaPipeline, &base64Input},
    {"UTF8_lines", &makeUtf8LinesPipeline, &englishInput},
    {"CSV_max", &makeCsvMaxPipeline, &csvInput},
    {"CHSI_deaths", [] { return makeChsiPipeline("deaths"); }, &chsiInput},
    {"SBO_employees", [] { return makeSboPipeline("employees"); },
     &sboInput},
    {"CC_id", &makeCcIdPipeline, &ccInput},
    {"TPC_DI_SQL", &makeTpcDiSqlPipeline, &tpcInput},
    {"PIR_proteins", &makePirProteinsPipeline, &pirInput},
    {"DBLP_oldest", &makeDblpOldestPipeline, &dblpInput},
    {"MONDIAL", &makeMondialPipeline, &mondialInput},
    {"HtmlEncode", &makeHtmlEncodePipeline, &randomUtf16Input},
};

class BackendParamTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(BackendParamTest, AllBackendsAgree) {
  const PipelineCase &C = GetParam();
  BuiltPipeline P = C.Make();
  std::vector<uint64_t> In = C.Input();

  auto Fused = P.CompiledFused->run(In);
  ASSERT_TRUE(Fused.has_value()) << C.Name;

  auto Pull = runPullPipeline(P.stagePtrs(), In);
  ASSERT_TRUE(Pull.has_value()) << C.Name;
  EXPECT_EQ(*Fused, *Pull) << C.Name << ": pull (LINQ) variant";

  auto Push = runPushPipeline(P.stagePtrs(), In);
  ASSERT_TRUE(Push.has_value()) << C.Name;
  EXPECT_EQ(*Fused, *Push) << C.Name << ": push (method-call) variant";

  auto Fast = runFastPath(*P.FastPlan, *P.CompiledFused, In);
  ASSERT_TRUE(Fast.has_value()) << C.Name;
  EXPECT_EQ(*Fused, *Fast) << C.Name << ": byte-class fast path";

  if (P.Native) {
    auto Nat = P.Native->run(In);
    ASSERT_TRUE(Nat.has_value()) << C.Name;
    EXPECT_EQ(*Fused, *Nat) << C.Name << ": native generated code";
  }

  // The control graph renders to dot without crashing and mentions every
  // state.
  std::string Dot = bstToDot(*P.Fused, "t");
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("doublecircle"), std::string::npos)
      << C.Name << " must have an accepting state";
}

INSTANTIATE_TEST_SUITE_P(
    AllPipelines, BackendParamTest, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<PipelineCase> &Info) {
      return Info.param.Name;
    });

} // namespace
