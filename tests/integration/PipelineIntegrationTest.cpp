//===- tests/integration/PipelineIntegrationTest.cpp ----------------------===//
//
// End-to-end integration: every benchmark pipeline's fused transducer is
// cross-checked against independent implementations (hand-written
// references, the DOM/streaming XML baselines, the interpreted regex
// library) and against its own unfused variants, on synthetic datasets.
//
//===----------------------------------------------------------------------===//

#include "bench/baselines/RegexLib.h"
#include "bench/baselines/XmlLib.h"
#include "bench/common/BenchCommon.h"
#include "data/Datasets.h"
#include "stdlib/Reference.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::bench;

namespace {

std::string bytesOf(const std::vector<uint64_t> &Raw) {
  std::string S;
  for (uint64_t V : Raw)
    S.push_back(char(V & 0xFF));
  return S;
}

/// All three execution strategies agree on the pipeline.
void expectVariantsAgree(const BuiltPipeline &P,
                         const std::vector<uint64_t> &In) {
  auto Fused = P.CompiledFused->run(In);
  auto Pull = runPullPipeline(P.stagePtrs(), In);
  auto Push = runPushPipeline(P.stagePtrs(), In);
  ASSERT_TRUE(Fused.has_value()) << P.Name;
  ASSERT_TRUE(Pull.has_value()) << P.Name;
  ASSERT_TRUE(Push.has_value()) << P.Name;
  EXPECT_EQ(*Fused, *Pull) << P.Name;
  EXPECT_EQ(*Fused, *Push) << P.Name;
}

TEST(PipelineIntegration, SboEmployeesMatchesRegexLibBaseline) {
  BuiltPipeline P = makeSboPipeline("employees");
  std::string Csv = data::makeSboCsv(41, 64 * 1024, 5);
  std::vector<uint64_t> In = rawOfBytes(Csv);
  expectVariantsAgree(P, In);

  // Independent computation with the interpreted regex library.
  auto Re = baselines::InterpretedRegex::compile(
      "(?:(?:[^,\\n]*,){5}(?<v>\\d+),[^\\n]*\\n)*");
  ASSERT_TRUE(Re.has_value());
  auto Caps = Re->findAll(*ref::utf8Decode(Csv));
  ASSERT_TRUE(Caps.has_value());
  uint32_t Max = 0;
  for (const auto &C : *Caps)
    Max = std::max(Max, *ref::toInt(C));

  auto Out = P.CompiledFused->run(In);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(bytesOf(*Out), *ref::utf8Encode(ref::intToDecimal(Max)));
}

TEST(PipelineIntegration, ChsiAverageMatchesBaseline) {
  BuiltPipeline P = makeChsiPipeline("cancer");
  std::string Csv = data::makeChsiCsv(42, 64 * 1024, 7);
  std::vector<uint64_t> In = rawOfBytes(Csv);
  expectVariantsAgree(P, In);

  auto Re = baselines::InterpretedRegex::compile(
      "(?:(?:[^,\\n]*,){7}(?<v>\\d+),[^\\n]*\\n)*");
  auto Caps = Re->findAll(*ref::utf8Decode(Csv));
  ASSERT_TRUE(Caps.has_value());
  uint64_t Sum = 0;
  for (const auto &C : *Caps)
    Sum += *ref::toInt(C);
  uint32_t Avg = uint32_t(Sum / Caps->size());
  auto Out = P.CompiledFused->run(In);
  EXPECT_EQ(bytesOf(*Out), *ref::utf8Encode(ref::intToDecimal(Avg)));
}

TEST(PipelineIntegration, MondialMatchesBothXmlBaselines) {
  BuiltPipeline P = makeMondialPipeline();
  std::string Xml = data::makeMondialXml(43, 64 * 1024);
  std::vector<uint64_t> In = rawOfBytes(Xml);
  expectVariantsAgree(P, In);

  std::u16string Chars = *ref::utf8Decode(Xml);
  auto Path = baselines::splitPath("/mondial/country/city/population");
  auto Dom = baselines::parseXmlDom(Chars);
  ASSERT_TRUE(Dom.has_value());
  std::vector<std::u16string> DomMatches =
      baselines::domQuery(**Dom, Path);
  auto StreamMatches = baselines::streamingXPath(Chars, Path);
  ASSERT_TRUE(StreamMatches.has_value());
  EXPECT_EQ(DomMatches, *StreamMatches) << "baselines must agree";
  ASSERT_FALSE(DomMatches.empty());

  uint32_t Max = 0;
  for (const auto &M : DomMatches)
    Max = std::max(Max, *ref::toInt(M));
  std::u16string Line = ref::intToDecimal(Max);
  Line.push_back(u'\n');
  auto Out = P.CompiledFused->run(In);
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(bytesOf(*Out), *ref::utf8Encode(Line));
}

TEST(PipelineIntegration, TpcDiSqlFormatting) {
  BuiltPipeline P = makeTpcDiSqlPipeline();
  std::string Xml = data::makeTpcDiXml(44, 16 * 1024);
  std::vector<uint64_t> In = rawOfBytes(Xml);
  expectVariantsAgree(P, In);
  auto Out = P.CompiledFused->run(In);
  ASSERT_TRUE(Out.has_value());
  std::string Sql = bytesOf(*Out);
  EXPECT_EQ(Sql.rfind("INSERT INTO account VALUES (", 0), 0u);
  EXPECT_NE(Sql.find(");\n"), std::string::npos);
}

TEST(PipelineIntegration, Base64DeltaMatchesHandWritten) {
  BuiltPipeline P = makeBase64DeltaPipeline();
  std::string In64 = data::makeBase64Ints(45, 2000, 1u << 30);
  std::vector<uint64_t> In = rawOfBytes(In64);
  expectVariantsAgree(P, In);

  std::vector<uint32_t> Ints = data::base64IntsPayload(45, 2000, 1u << 30);
  std::u16string Text;
  for (uint32_t D : ref::deltas(Ints)) {
    Text += ref::intToDecimal(D);
    Text.push_back(u'\n');
  }
  auto Out = P.CompiledFused->run(In);
  EXPECT_EQ(bytesOf(*Out), *ref::utf8Encode(Text));
}

TEST(PipelineIntegration, Base64AvgMatchesHandWritten) {
  BuiltPipeline P = makeBase64AvgPipeline();
  std::string In64 = data::makeBase64Ints(46, 500, 1u << 20);
  std::vector<uint64_t> In = rawOfBytes(In64);
  expectVariantsAgree(P, In);

  std::vector<uint32_t> Ints = data::base64IntsPayload(46, 500, 1u << 20);
  std::vector<uint32_t> Avg = ref::windowedAverage(Ints, 10);
  std::string Ser;
  for (uint32_t V : Avg) {
    Ser.push_back(char(V & 0xFF));
    Ser.push_back(char((V >> 8) & 0xFF));
    Ser.push_back(char((V >> 16) & 0xFF));
    Ser.push_back(char((V >> 24) & 0xFF));
  }
  auto Out = P.CompiledFused->run(In);
  EXPECT_EQ(bytesOf(*Out), ref::base64Encode(Ser));
}

TEST(PipelineIntegration, Utf8LinesCountsNewlines) {
  BuiltPipeline P = makeUtf8LinesPipeline();
  std::string Text = data::makeEnglishText(47, 32 * 1024);
  std::vector<uint64_t> In = rawOfBytes(Text);
  expectVariantsAgree(P, In);
  size_t Lines = std::count(Text.begin(), Text.end(), '\n');
  auto Out = P.CompiledFused->run(In);
  EXPECT_EQ(bytesOf(*Out),
            *ref::utf8Encode(ref::intToDecimal(uint32_t(Lines))));
}

TEST(PipelineIntegration, CsvMaxLength) {
  BuiltPipeline P = makeCsvMaxPipeline();
  std::string Csv = data::makeCsv(48, 32 * 1024, 6, 4, 100000);
  std::vector<uint64_t> In = rawOfBytes(Csv);
  expectVariantsAgree(P, In);

  // Independent: longest third column by direct splitting.
  size_t MaxLen = 0, Pos = 0;
  while (Pos < Csv.size()) {
    size_t End = Csv.find('\n', Pos);
    std::string Line = Csv.substr(Pos, End - Pos);
    size_t C1 = Line.find(','), C2 = Line.find(',', C1 + 1);
    size_t C3 = Line.find(',', C2 + 1);
    MaxLen = std::max(MaxLen, C3 - C2 - 1);
    Pos = End + 1;
  }
  auto Out = P.CompiledFused->run(In);
  EXPECT_EQ(bytesOf(*Out),
            *ref::utf8Encode(ref::intToDecimal(uint32_t(MaxLen))));
}

TEST(PipelineIntegration, HtmlPipelineOnAllDatasets) {
  BuiltPipeline P = makeHtmlEncodePipeline();
  for (std::u16string Text :
       {data::makeRandomUtf16(49, 5000, true),
        data::makeChineseText(50, 5000)}) {
    std::vector<uint64_t> In = rawOfChars(Text);
    auto Out = P.CompiledFused->run(In);
    ASSERT_TRUE(Out.has_value());
    std::u16string Got;
    for (uint64_t C : *Out)
      Got.push_back(char16_t(C));
    EXPECT_EQ(Got, ref::antiXssHtmlEncode(Text));
  }
}

TEST(PipelineIntegration, CompileTimesAreRecorded) {
  BuiltPipeline P = makeUtf8ToIntPipeline();
  EXPECT_GT(P.TotalSeconds, 0.0);
  EXPECT_GT(P.FStats.SolverChecks, 0u);
  // The §1 pipeline: RBBE removes the multibyte branch.
  EXPECT_GT(P.RStats.BranchesRemoved + P.RStats.StatesRemoved, 0u);
}

} // namespace
