//===- tests/integration/CliToolTest.cpp - efcc end-to-end ----------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string efccPath() {
  // ctest may run from the build root or build/tests.
  for (const char *P : {"./tools/efcc", "../tools/efcc", "build/tools/efcc"}) {
    std::ifstream F(P, std::ios::binary);
    if (F.good())
      return P;
  }
  return "";
}

bool efccAvailable() { return !efccPath().empty(); }

/// Runs a shell command, captures stdout.
int runCmd(const std::string &Cmd, std::string &Out) {
  std::string File = ::testing::TempDir() + "/efcc_out.txt";
  int Rc = std::system((Cmd + " > " + File + " 2>/dev/null").c_str());
  std::ifstream F(File);
  std::ostringstream Buf;
  Buf << F.rdbuf();
  Out = Buf.str();
  return Rc;
}

TEST(CliToolTest, CsvMaxEndToEnd) {
  if (!efccAvailable())
    GTEST_SKIP() << "efcc not built in expected location";
  std::string Csv = ::testing::TempDir() + "/efcc_in.csv";
  {
    std::ofstream F(Csv);
    F << "a,17,x\nb,99,y\nc,40,z\n";
  }
  std::string Out;
  int Rc = runCmd(efccPath() +
                      " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*'"
                      " --agg max --format decimal --run " +
                  Csv, Out);
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out, "99");
}

TEST(CliToolTest, XPathSqlEndToEnd) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Xml = ::testing::TempDir() + "/efcc_in.xml";
  {
    std::ofstream F(Xml);
    F << "<r><v>5</v><pad/><v>6</v></r>";
  }
  std::string Out;
  int Rc = runCmd(efccPath() + " --xpath /r/v --format sql --run " + Xml,
                  Out);
  EXPECT_EQ(Rc, 0);
  EXPECT_EQ(Out, "INSERT INTO t VALUES (5);\nINSERT INTO t VALUES (6);\n");
}

TEST(CliToolTest, EmitCppProducesCompilableSource) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Cpp = ::testing::TempDir() + "/efcc_gen.cpp";
  std::string Out;
  int Rc = runCmd(efccPath() +
                      " --regex '(?<v>\\d+)' --format decimal --emit-cpp " +
                  Cpp, Out);
  EXPECT_EQ(Rc, 0);
  // The unit must at least compile as an object file.
  std::string Obj = ::testing::TempDir() + "/efcc_gen.o";
  int CRc = std::system(
      ("c++ -std=c++17 -c -o " + Obj + " " + Cpp + " 2>/dev/null").c_str());
  EXPECT_EQ(CRc, 0);
}

TEST(CliToolTest, RejectsInvalidInput) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Csv = ::testing::TempDir() + "/efcc_bad.csv";
  {
    std::ofstream F(Csv);
    F << "not matching the pattern at all";
  }
  std::string Out;
  int Rc = runCmd(efccPath() +
                      " --regex '(?:(?<v>\\d+),\\n)*' --run " + Csv, Out);
  EXPECT_NE(Rc, 0);
}

/// Runs a shell command, captures stderr (stdout discarded).
int runCmdErr(const std::string &Cmd, std::string &Err) {
  std::string File = ::testing::TempDir() + "/efcc_err.txt";
  int Rc = std::system((Cmd + " > /dev/null 2>" + File).c_str());
  std::ifstream F(File);
  std::ostringstream Buf;
  Buf << F.rdbuf();
  Err = Buf.str();
  return Rc;
}

TEST(CliToolTest, MetricsDumpOnStderr) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Csv = ::testing::TempDir() + "/efcc_metrics_in.csv";
  {
    std::ofstream F(Csv);
    F << "a,17,x\nb,99,y\n";
  }
  std::string Err;
  int Rc = runCmdErr(efccPath() +
                         " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),"
                         "[^\\n]*\\n)*' --agg max --format decimal --run " +
                         Csv + " --metrics",
                     Err);
  EXPECT_EQ(Rc, 0);
  // A fresh process exercised solver, fusion, RBBE, cache and fast path;
  // all must appear in the Prometheus dump.
  for (const char *Family :
       {"# TYPE efc_solver_checks_total counter", "efc_fusion_runs_total",
        "efc_rbbe_runs_total 1", "efc_cache_builds_total 1",
        "efc_fastpath_runs_total"})
    EXPECT_NE(Err.find(Family), std::string::npos)
        << "missing from --metrics dump: " << Family << "\n" << Err;
  // --run output stays machine-clean: the dump must not be on stdout.
  std::string Out;
  runCmd(efccPath() +
             " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*'"
             " --agg max --format decimal --run " +
             Csv + " --metrics",
         Out);
  EXPECT_EQ(Out, "99");
}

TEST(CliToolTest, TraceEmitsCompileSpanTree) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Csv = ::testing::TempDir() + "/efcc_trace_in.csv";
  {
    std::ofstream F(Csv);
    F << "a,17,x\n";
  }
  std::string Trace = ::testing::TempDir() + "/efcc_trace.jsonl";
  std::remove(Trace.c_str());
  std::string Out;
  int Rc = runCmd("EFC_TRACE=" + Trace + " " + efccPath() +
                      " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),"
                      "[^\\n]*\\n)*' --agg max --format decimal --run " +
                      Csv,
                  Out);
  EXPECT_EQ(Rc, 0);
  std::ifstream F(Trace);
  ASSERT_TRUE(F.good()) << "EFC_TRACE file was not created";
  std::ostringstream Buf;
  Buf << F.rdbuf();
  std::string Spans = Buf.str();
  // The compile-phase tree: a root "compile" span with fuse, rbbe,
  // vm_compile and fastpath_plan children.
  for (const char *Name : {"\"name\":\"compile\"", "\"name\":\"fuse\"",
                           "\"name\":\"rbbe\"", "\"name\":\"vm_compile\"",
                           "\"name\":\"fastpath_plan\""})
    EXPECT_NE(Spans.find(Name), std::string::npos)
        << "missing span: " << Name << "\n" << Spans;
  // Children carry a parent id; the root must not.
  size_t CompileLine = Spans.find("\"name\":\"compile\"");
  ASSERT_NE(CompileLine, std::string::npos);
  size_t LineStart = Spans.rfind('\n', CompileLine);
  LineStart = LineStart == std::string::npos ? 0 : LineStart + 1;
  size_t LineEnd = Spans.find('\n', CompileLine);
  std::string Root = Spans.substr(LineStart, LineEnd - LineStart);
  EXPECT_EQ(Root.find("\"parent\""), std::string::npos) << Root;
  size_t FuseLine = Spans.find("\"name\":\"fuse\"");
  std::string Fuse =
      Spans.substr(FuseLine, Spans.find('\n', FuseLine) - FuseLine);
  EXPECT_NE(Fuse.find("\"parent\":"), std::string::npos) << Fuse;
}

TEST(CliToolTest, UsageErrors) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Out;
  EXPECT_NE(runCmd(efccPath(), Out), 0);
  EXPECT_NE(runCmd(efccPath() + " --regex a --xpath /b --stats", Out), 0);
  EXPECT_NE(runCmd(efccPath() + " --regex a --agg bogus --stats", Out), 0);
}

TEST(CliToolTest, ParallelFlagErrors) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Csv = ::testing::TempDir() + "/efcc_par_in.csv";
  {
    std::ofstream F(Csv);
    F << "a,17,x\nb,99,y\n";
  }
  const std::string Rx =
      " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*'"
      " --agg max --format decimal";
  // Contradictory combinations are usage errors (exit 2), never silent
  // sequential runs.
  std::string Err;
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --run " + Csv +
                          " --parallel 4 --backend vm",
                      Err),
            2 << 8);
  EXPECT_NE(Err.find("fastpath"), std::string::npos) << Err;
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --run " + Csv + " --parallel 0",
                      Err),
            2 << 8);
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --run " + Csv + " --parallel -2",
                      Err),
            2 << 8);
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --run " + Csv + " --parallel x",
                      Err),
            2 << 8);
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --parallel 4 --stats", Err),
            2 << 8);
  EXPECT_NE(Err.find("--run"), std::string::npos) << Err;
  // A 2-line input is far below EFC_PARALLEL_MIN_BYTES: refuse loudly.
  EXPECT_EQ(runCmdErr(efccPath() + Rx + " --run " + Csv + " --parallel 4",
                      Err),
            2 << 8);
  EXPECT_NE(Err.find("too small"), std::string::npos) << Err;
}

TEST(CliToolTest, ParallelRunMatchesSequential) {
  if (!efccAvailable())
    GTEST_SKIP();
  std::string Csv = ::testing::TempDir() + "/efcc_par_big.csv";
  {
    std::ofstream F(Csv);
    for (int I = 0; I < 2000; ++I)
      F << "row" << I << "," << (I * 7) % 10000 << ",tail\n";
  }
  const std::string Rx =
      " --regex '(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*'"
      " --agg max --format decimal";
  std::string Seq, Par;
  EXPECT_EQ(runCmd(efccPath() + Rx + " --run " + Csv, Seq), 0);
  // Lower the eligibility floor so this test input parallelizes.
  EXPECT_EQ(runCmd("EFC_PARALLEL_MIN_BYTES=1024 " + efccPath() + Rx +
                       " --run " + Csv + " --parallel 4",
                   Par),
            0);
  EXPECT_EQ(Seq, Par);
  EXPECT_EQ(Seq, "9996");
}

} // namespace
