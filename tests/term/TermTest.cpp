//===- tests/term/TermTest.cpp - Factory normalization tests --------------===//

#include "term/TermContext.h"
#include "term/Print.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class TermTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(TermTest, HashConsingGivesPointerEquality) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef A = Ctx.mkAdd(X, Ctx.bvConst(8, 1));
  TermRef B = Ctx.mkAdd(X, Ctx.bvConst(8, 1));
  EXPECT_EQ(A, B);
}

TEST_F(TermTest, VariablesInternedByNameAndType) {
  TermRef X8 = Ctx.var("x", Ctx.bv(8));
  TermRef X8b = Ctx.var("x", Ctx.bv(8));
  TermRef X16 = Ctx.var("x", Ctx.bv(16));
  EXPECT_EQ(X8, X8b);
  EXPECT_NE(X8, X16);
}

TEST_F(TermTest, FreshVarsAreDistinct) {
  TermRef A = Ctx.freshVar("t", Ctx.bv(8));
  TermRef B = Ctx.freshVar("t", Ctx.bv(8));
  EXPECT_NE(A, B);
}

TEST_F(TermTest, ConstantFolding) {
  TermRef A = Ctx.mkAdd(Ctx.bvConst(8, 200), Ctx.bvConst(8, 100));
  ASSERT_TRUE(A->isConst());
  EXPECT_EQ(A->constBits(), 44u); // 300 mod 256
  TermRef M = Ctx.mkMul(Ctx.bvConst(8, 16), Ctx.bvConst(8, 16));
  EXPECT_EQ(M->constBits(), 0u);
  TermRef D = Ctx.mkUDiv(Ctx.bvConst(8, 7), Ctx.bvConst(8, 0));
  EXPECT_EQ(D->constBits(), 255u) << "SMT-LIB div-by-zero";
  TermRef R = Ctx.mkURem(Ctx.bvConst(8, 7), Ctx.bvConst(8, 0));
  EXPECT_EQ(R->constBits(), 7u);
}

TEST_F(TermTest, BooleanIdentities) {
  TermRef B = Ctx.var("b", Ctx.boolTy());
  EXPECT_EQ(Ctx.mkAnd(B, Ctx.trueConst()), B);
  EXPECT_EQ(Ctx.mkAnd(B, Ctx.falseConst()), Ctx.falseConst());
  EXPECT_EQ(Ctx.mkOr(B, Ctx.falseConst()), B);
  EXPECT_EQ(Ctx.mkAnd(B, Ctx.mkNot(B)), Ctx.falseConst());
  EXPECT_EQ(Ctx.mkOr(B, Ctx.mkNot(B)), Ctx.trueConst());
  EXPECT_EQ(Ctx.mkNot(Ctx.mkNot(B)), B);
}

TEST_F(TermTest, NegationNormalizesComparisons) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  EXPECT_EQ(Ctx.mkNot(Ctx.mkUlt(X, Y)), Ctx.mkUle(Y, X));
  EXPECT_EQ(Ctx.mkNot(Ctx.mkUle(X, Y)), Ctx.mkUlt(Y, X));
}

TEST_F(TermTest, ComparisonEdgeCases) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  EXPECT_EQ(Ctx.mkUlt(X, Ctx.bvConst(8, 0)), Ctx.falseConst());
  EXPECT_EQ(Ctx.mkUle(Ctx.bvConst(8, 0), X), Ctx.trueConst());
  EXPECT_EQ(Ctx.mkUle(X, Ctx.bvConst(8, 255)), Ctx.trueConst());
  EXPECT_EQ(Ctx.mkUle(X, Ctx.bvConst(8, 0)), Ctx.mkEq(X, Ctx.bvConst(8, 0)));
  EXPECT_EQ(Ctx.mkUlt(X, X), Ctx.falseConst());
  EXPECT_EQ(Ctx.mkUle(X, X), Ctx.trueConst());
}

TEST_F(TermTest, IteSimplification) {
  TermRef C = Ctx.var("c", Ctx.boolTy());
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  EXPECT_EQ(Ctx.mkIte(Ctx.trueConst(), X, Y), X);
  EXPECT_EQ(Ctx.mkIte(Ctx.falseConst(), X, Y), Y);
  EXPECT_EQ(Ctx.mkIte(C, X, X), X);
  EXPECT_EQ(Ctx.mkIte(C, Ctx.trueConst(), Ctx.falseConst()), C);
  EXPECT_EQ(Ctx.mkIte(C, Ctx.falseConst(), Ctx.trueConst()), Ctx.mkNot(C));
}

TEST_F(TermTest, NestedIteOnSameConditionCollapses) {
  TermRef C = Ctx.var("c", Ctx.boolTy());
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  TermRef Z = Ctx.var("z", Ctx.bv(8));
  // ite(c, ite(c, x, y), z) == ite(c, x, z)
  TermRef T = Ctx.mkIte(C, Ctx.mkIte(C, X, Y), Z);
  EXPECT_EQ(T, Ctx.mkIte(C, X, Z));
}

TEST_F(TermTest, TupleProjectionCancels) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef B = Ctx.var("b", Ctx.boolTy());
  TermRef P = Ctx.mkPair(X, B);
  EXPECT_EQ(Ctx.mkProj1(P), X);
  EXPECT_EQ(Ctx.mkProj2(P), B);
}

TEST_F(TermTest, TupleEtaContraction) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  TermRef Rebuilt = Ctx.mkPair(Ctx.mkProj1(R), Ctx.mkProj2(R));
  EXPECT_EQ(Rebuilt, R);
}

TEST_F(TermTest, TupleGetPushesThroughIte) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  TermRef Q = Ctx.var("q", Ty);
  TermRef C = Ctx.var("c", Ctx.boolTy());
  TermRef T = Ctx.mkTupleGet(Ctx.mkIte(C, R, Q), 0);
  EXPECT_EQ(T->op(), Op::Ite);
  EXPECT_EQ(T->operand(1), Ctx.mkProj1(R));
}

TEST_F(TermTest, TupleEqualityDecomposes) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  TermRef Q = Ctx.var("q", Ty);
  TermRef E = Ctx.mkEq(R, Q);
  EXPECT_EQ(E->op(), Op::And);
}

TEST_F(TermTest, EqualityOnEqualTermsIsTrue) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  EXPECT_EQ(Ctx.mkEq(R, R), Ctx.trueConst());
}

TEST_F(TermTest, AddReassociation) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkAdd(Ctx.mkAdd(X, Ctx.bvConst(8, 3)), Ctx.bvConst(8, 4));
  EXPECT_EQ(T, Ctx.mkAdd(X, Ctx.bvConst(8, 7)));
  // Subtraction folds into addition of the negated constant.
  TermRef U = Ctx.mkSub(Ctx.mkAdd(X, Ctx.bvConst(8, 3)), Ctx.bvConst(8, 3));
  EXPECT_EQ(U, X);
}

TEST_F(TermTest, BitwiseIdentities) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  EXPECT_EQ(Ctx.mkBvAnd(X, Ctx.bvConst(8, 0xFF)), X);
  EXPECT_EQ(Ctx.mkBvAnd(X, Ctx.bvConst(8, 0)), Ctx.bvConst(8, 0));
  EXPECT_EQ(Ctx.mkBvOr(X, Ctx.bvConst(8, 0)), X);
  EXPECT_EQ(Ctx.mkBvXor(X, X), Ctx.bvConst(8, 0));
  EXPECT_EQ(Ctx.mkBvNot(Ctx.mkBvNot(X)), X);
}

TEST_F(TermTest, ExtractAndExtend) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  EXPECT_EQ(Ctx.mkZExt(X, 8), X);
  TermRef Z = Ctx.mkZExt(X, 16);
  EXPECT_EQ(Z->type()->width(), 16u);
  EXPECT_EQ(Ctx.mkExtract(Z, 7, 0), X);
  EXPECT_EQ(Ctx.mkExtract(X, 7, 0), X);
  TermRef C = Ctx.mkExtract(Ctx.bvConst(8, 0xA5), 7, 4);
  EXPECT_EQ(C->constBits(), 0xAu);
}

TEST_F(TermTest, PrinterProducesReadableOutput) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkBvOr(Ctx.mkShlC(Ctx.mkBvAnd(X, Ctx.bvConst(8, 0x3F)), 6),
                         Ctx.bvConst(8, 1));
  std::string S = termToString(Ctx, T);
  EXPECT_NE(S.find("x"), std::string::npos);
  EXPECT_NE(S.find("<<"), std::string::npos);
}

TEST_F(TermTest, InRangeBuildsConjunction) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef R = Ctx.mkInRange(X, 0x30, 0x39);
  EXPECT_EQ(R->op(), Op::And);
  TermRef Single = Ctx.mkInRange(X, 5, 5);
  EXPECT_EQ(Single->op(), Op::Eq);
}

} // namespace
