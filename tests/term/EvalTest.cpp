//===- tests/term/EvalTest.cpp - Evaluator semantics tests ----------------===//

#include "term/Eval.h"
#include "term/TermContext.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class EvalTest : public ::testing::Test {
protected:
  TermContext Ctx;
  Env E;

  Value evalWith(TermRef T, uint64_t XVal) {
    Env Local;
    Local.bind(Ctx.var("x", Ctx.bv(8)), Value::bv(8, XVal));
    return evalTerm(T, Local);
  }
};

TEST_F(EvalTest, ArithmeticWrapsAtWidth) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkAdd(X, Ctx.bvConst(8, 10));
  EXPECT_EQ(evalWith(T, 250).bits(), 4u);
}

TEST_F(EvalTest, SignedComparisonUsesTwosComplement) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkSlt(X, Ctx.bvConst(8, 0));
  EXPECT_TRUE(evalWith(T, 0x80).boolValue());  // -128 < 0
  EXPECT_FALSE(evalWith(T, 0x7F).boolValue()); // 127 < 0
}

TEST_F(EvalTest, ShiftBeyondWidthIsZeroOrSignFill) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Shl = Ctx.mkShl(X, Ctx.bvConst(8, 9));
  EXPECT_EQ(evalWith(Shl, 0xFF).bits(), 0u);
  TermRef AShr = Ctx.mkAShr(X, Ctx.bvConst(8, 9));
  EXPECT_EQ(evalWith(AShr, 0x80).bits(), 0xFFu);
  EXPECT_EQ(evalWith(AShr, 0x40).bits(), 0u);
}

TEST_F(EvalTest, DivisionSemantics) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef D = Ctx.mkUDiv(X, Ctx.bvConst(8, 10));
  EXPECT_EQ(evalWith(D, 137).bits(), 13u);
  TermRef R = Ctx.mkURem(X, Ctx.bvConst(8, 10));
  EXPECT_EQ(evalWith(R, 137).bits(), 7u);
  TermRef DZ = Ctx.mkUDiv(X, Ctx.var("x", Ctx.bv(8)));
  (void)DZ;
  TermRef ByZero = Ctx.mkUDiv(X, Ctx.mkSub(X, X));
  EXPECT_EQ(evalWith(ByZero, 9).bits(), 0xFFu);
}

TEST_F(EvalTest, SextZextExtract) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  EXPECT_EQ(evalWith(Ctx.mkZExt(X, 16), 0x80).bits(), 0x80u);
  EXPECT_EQ(evalWith(Ctx.mkSExt(X, 16), 0x80).bits(), 0xFF80u);
  EXPECT_EQ(evalWith(Ctx.mkExtract(X, 7, 4), 0xA5).bits(), 0xAu);
}

TEST_F(EvalTest, TupleRoundTrip) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  Env Local;
  Local.bind(R, Value::tuple({Value::bv(8, 42), Value::boolV(true)}));
  EXPECT_EQ(evalTerm(Ctx.mkProj1(R), Local).bits(), 42u);
  EXPECT_TRUE(evalTerm(Ctx.mkProj2(R), Local).boolValue());
  // Rebuild a tuple with one field updated.
  TermRef Updated =
      Ctx.mkPair(Ctx.mkAdd(Ctx.mkProj1(R), Ctx.bvConst(8, 1)), Ctx.mkProj2(R));
  Value V = evalTerm(Updated, Local);
  EXPECT_EQ(V.elem(0).bits(), 43u);
  EXPECT_TRUE(V.elem(1).boolValue());
}

TEST_F(EvalTest, IteSelectsBranch) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkIte(Ctx.mkUle(X, Ctx.bvConst(8, 10)), Ctx.bvConst(8, 1),
                        Ctx.bvConst(8, 2));
  EXPECT_EQ(evalWith(T, 5).bits(), 1u);
  EXPECT_EQ(evalWith(T, 50).bits(), 2u);
}

} // namespace
