//===- tests/term/RewriteTest.cpp - Substitution tests --------------------===//

#include "term/Rewrite.h"
#include "term/TermContext.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class RewriteTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(RewriteTest, SimpleSubstitution) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  TermRef T = Ctx.mkAdd(X, Ctx.bvConst(8, 1));
  Subst S;
  S.set(X, Y);
  EXPECT_EQ(substitute(Ctx, T, S), Ctx.mkAdd(Y, Ctx.bvConst(8, 1)));
}

TEST_F(RewriteTest, SubstitutionIsSimultaneous) {
  // {x -> y, y -> x} swaps, with no capture.
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  TermRef T = Ctx.mkSub(X, Y);
  Subst S;
  S.set(X, Y);
  S.set(Y, X);
  EXPECT_EQ(substitute(Ctx, T, S), Ctx.mkSub(Y, X));
}

TEST_F(RewriteTest, NoReSubstitutionIntoReplacement) {
  // {x -> x + 1} applied once.
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkMul(X, X);
  Subst S;
  S.set(X, Ctx.mkAdd(X, Ctx.bvConst(8, 1)));
  TermRef R = substitute(Ctx, T, S);
  TermRef XP1 = Ctx.mkAdd(X, Ctx.bvConst(8, 1));
  EXPECT_EQ(R, Ctx.mkMul(XP1, XP1));
}

TEST_F(RewriteTest, SubstitutionRenormalizes) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkAdd(X, Ctx.bvConst(8, 5));
  Subst S;
  S.set(X, Ctx.bvConst(8, 10));
  TermRef R = substitute(Ctx, T, S);
  ASSERT_TRUE(R->isConst());
  EXPECT_EQ(R->constBits(), 15u);
}

TEST_F(RewriteTest, TupleSubstitutionCancelsProjections) {
  const Type *Ty = Ctx.pairTy(Ctx.bv(8), Ctx.boolTy());
  TermRef R = Ctx.var("r", Ty);
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkProj1(R);
  Subst S;
  S.set(R, Ctx.mkPair(X, Ctx.trueConst()));
  EXPECT_EQ(substitute(Ctx, T, S), X);
}

TEST_F(RewriteTest, CollectVarsFindsAllLeaves) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef Y = Ctx.var("y", Ctx.bv(8));
  TermRef T = Ctx.mkAnd(Ctx.mkUlt(X, Y), Ctx.mkEq(Y, Ctx.bvConst(8, 1)));
  std::unordered_set<TermRef> Vars;
  collectVars(T, Vars);
  EXPECT_EQ(Vars.size(), 2u);
  EXPECT_TRUE(Vars.count(X));
  EXPECT_TRUE(Vars.count(Y));
  EXPECT_TRUE(mentionsVar(T, X));
  EXPECT_FALSE(mentionsVar(T, Ctx.var("z", Ctx.bv(8))));
}

TEST_F(RewriteTest, IdentitySubstitutionReusesNodes) {
  TermRef X = Ctx.var("x", Ctx.bv(8));
  TermRef T = Ctx.mkMul(Ctx.mkAdd(X, Ctx.bvConst(8, 1)), X);
  Subst S;
  S.set(Ctx.var("unused", Ctx.bv(8)), X);
  EXPECT_EQ(substitute(Ctx, T, S), T);
}

} // namespace
