//===- tests/term/TermParamTest.cpp - Parameterized normalization sweeps --===//
//
// TEST_P sweeps: for every bitvector width and operator, factory-built
// terms must evaluate identically to the shared concrete semantics
// (ScalarOps), on boundary values and random points — i.e., the
// simplifier never changes meaning.
//
//===----------------------------------------------------------------------===//

#include "support/Stopwatch.h"
#include "term/Eval.h"
#include "term/ScalarOps.h"
#include "term/TermContext.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class WidthOpTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Op>> {};

std::vector<uint64_t> samplePoints(unsigned W, SplitMix64 &Rng) {
  uint64_t Mask = Value::maskOf(W);
  std::vector<uint64_t> Pts = {0, 1, Mask, Mask - 1, Mask / 2,
                               (Mask / 2) + 1};
  for (int I = 0; I < 6; ++I)
    Pts.push_back(Rng.next() & Mask);
  return Pts;
}

TEST_P(WidthOpTest, FactoryMatchesConcreteSemantics) {
  auto [W, O] = GetParam();
  TermContext Ctx;
  TermRef X = Ctx.var("x", Ctx.bv(W));
  TermRef Y = Ctx.var("y", Ctx.bv(W));
  SplitMix64 Rng(uint64_t(W) * 131 + uint64_t(O));

  auto Build = [&](TermRef A, TermRef B) -> TermRef {
    switch (O) {
    case Op::Add:
      return Ctx.mkAdd(A, B);
    case Op::Sub:
      return Ctx.mkSub(A, B);
    case Op::Mul:
      return Ctx.mkMul(A, B);
    case Op::UDiv:
      return Ctx.mkUDiv(A, B);
    case Op::URem:
      return Ctx.mkURem(A, B);
    case Op::BvAnd:
      return Ctx.mkBvAnd(A, B);
    case Op::BvOr:
      return Ctx.mkBvOr(A, B);
    case Op::BvXor:
      return Ctx.mkBvXor(A, B);
    case Op::Shl:
      return Ctx.mkShl(A, B);
    case Op::LShr:
      return Ctx.mkLShr(A, B);
    case Op::AShr:
      return Ctx.mkAShr(A, B);
    default:
      return nullptr;
    }
  };

  for (uint64_t AV : samplePoints(W, Rng)) {
    for (uint64_t BV : samplePoints(W, Rng)) {
      uint64_t Direct = evalBvBinary(O, W, AV, BV);

      // Three construction shapes: fully symbolic, half constant (which
      // triggers different factory rewrites), fully constant (folding).
      Env E;
      E.bind(X, Value::bv(W, AV));
      E.bind(Y, Value::bv(W, BV));

      TermRef Symbolic = Build(X, Y);
      EXPECT_EQ(evalTerm(Symbolic, E).bits(), Direct)
          << "w=" << W << " a=" << AV << " b=" << BV;

      TermRef HalfConst = Build(X, Ctx.bvConst(W, BV));
      EXPECT_EQ(evalTerm(HalfConst, E).bits(), Direct);

      TermRef Folded = Build(Ctx.bvConst(W, AV), Ctx.bvConst(W, BV));
      ASSERT_TRUE(Folded->isConst());
      EXPECT_EQ(Folded->constBits(), Direct);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllOps, WidthOpTest,
    ::testing::Combine(
        ::testing::Values(1u, 4u, 8u, 16u, 32u, 63u, 64u),
        ::testing::Values(Op::Add, Op::Sub, Op::Mul, Op::UDiv, Op::URem,
                          Op::BvAnd, Op::BvOr, Op::BvXor, Op::Shl,
                          Op::LShr, Op::AShr)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, Op>> &Info) {
      return "w" + std::to_string(std::get<0>(Info.param)) + "_" +
             opName(std::get<1>(Info.param));
    });

class CompareOpTest
    : public ::testing::TestWithParam<std::tuple<unsigned, Op>> {};

TEST_P(CompareOpTest, FactoryMatchesConcreteSemantics) {
  auto [W, O] = GetParam();
  TermContext Ctx;
  TermRef X = Ctx.var("x", Ctx.bv(W));
  TermRef Y = Ctx.var("y", Ctx.bv(W));
  SplitMix64 Rng(uint64_t(W) * 733 + uint64_t(O));

  auto Build = [&](TermRef A, TermRef B) -> TermRef {
    switch (O) {
    case Op::Ult:
      return Ctx.mkUlt(A, B);
    case Op::Ule:
      return Ctx.mkUle(A, B);
    case Op::Slt:
      return Ctx.mkSlt(A, B);
    case Op::Sle:
      return Ctx.mkSle(A, B);
    default:
      return nullptr;
    }
  };

  for (uint64_t AV : samplePoints(W, Rng)) {
    for (uint64_t BV : samplePoints(W, Rng)) {
      bool Direct = evalBvCompare(O, W, AV, BV);
      Env E;
      E.bind(X, Value::bv(W, AV));
      E.bind(Y, Value::bv(W, BV));
      EXPECT_EQ(evalTerm(Build(X, Y), E).boolValue(), Direct)
          << "w=" << W << " a=" << AV << " b=" << BV;
      EXPECT_EQ(evalTerm(Build(X, Ctx.bvConst(W, BV)), E).boolValue(),
                Direct);
      EXPECT_EQ(evalTerm(Build(Ctx.bvConst(W, AV), Y), E).boolValue(),
                Direct);
      TermRef Folded = Build(Ctx.bvConst(W, AV), Ctx.bvConst(W, BV));
      ASSERT_TRUE(Folded->isConst());
      EXPECT_EQ(Folded->isTrue(), Direct);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAllCompares, CompareOpTest,
    ::testing::Combine(::testing::Values(1u, 4u, 8u, 16u, 32u, 64u),
                       ::testing::Values(Op::Ult, Op::Ule, Op::Slt,
                                         Op::Sle)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, Op>> &Info) {
      return "w" + std::to_string(std::get<0>(Info.param)) + "_" +
             opName(std::get<1>(Info.param));
    });

} // namespace
