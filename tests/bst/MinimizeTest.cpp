//===- tests/bst/MinimizeTest.cpp - Control-state minimization ------------===//
//
// Tests of the paper's future-work optimization: minimization of the
// fused transducer's control flow.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "bst/Minimize.h"
#include "fusion/Fusion.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class MinimizeTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(MinimizeTest, MergesToIntDuplicateStep) {
  // ToInt's p0 and p1 share the transition rule; they differ only in the
  // finalizer, so minimization must NOT merge them.
  Bst A = lib::makeToInt(Ctx);
  MinimizeStats St;
  Bst M = minimizeStates(A, &St);
  EXPECT_EQ(M.numStates(), 2u);
}

TEST_F(MinimizeTest, MergesGenuineDuplicates) {
  // Three states where 1 and 2 are exact duplicates.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 3, 0, Value::unit());
  TermRef X = A.inputVar();
  TermRef U = Ctx.unitConst();
  TermRef G = Ctx.mkUle(X, Ctx.bvConst(8, 10));
  A.setDelta(0, Rule::ite(G, Rule::base({X}, 1, U), Rule::base({X}, 2, U)));
  A.setDelta(1, Rule::ite(G, Rule::base({}, 0, U), Rule::undef()));
  A.setDelta(2, Rule::ite(G, Rule::base({}, 0, U), Rule::undef()));
  A.setFinalizer(0, Rule::base({}, 0, U));
  A.setFinalizer(1, Rule::base({}, 1, U)); // target ignored semantically
  A.setFinalizer(2, Rule::base({}, 2, U));
  ASSERT_TRUE(A.wellFormed());

  MinimizeStats St;
  Bst M = minimizeStates(A, &St);
  EXPECT_EQ(St.StatesBefore, 3u);
  EXPECT_EQ(M.numStates(), 2u);

  // Semantics preserved.
  SplitMix64 Rng(3);
  for (int I = 0; I < 30; ++I) {
    std::vector<Value> In;
    for (size_t K = 0, N = Rng.below(8); K < N; ++K)
      In.push_back(Value::bv(8, Rng.below(24)));
    auto Before = runBst(A, In);
    auto After = runBst(M, In);
    ASSERT_EQ(Before.has_value(), After.has_value());
    if (Before)
      EXPECT_EQ(*Before, *After);
  }
}

TEST_F(MinimizeTest, DistinguishesByFinalizer) {
  // Identical deltas but different finalizers must stay separate.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 2, 0, Value::unit());
  TermRef X = A.inputVar();
  TermRef U = Ctx.unitConst();
  A.setDelta(0, Rule::base({X}, 1, U));
  A.setDelta(1, Rule::base({X}, 0, U));
  A.setFinalizer(0, Rule::base({Ctx.bvConst(8, 1)}, 0, U));
  A.setFinalizer(1, Rule::base({Ctx.bvConst(8, 2)}, 1, U));
  Bst M = minimizeStates(A);
  EXPECT_EQ(M.numStates(), 2u);
}

TEST_F(MinimizeTest, RecursiveEquivalenceClasses) {
  // States 0/1 and 2/3 pairwise bisimilar through each other.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 4, 0, Value::unit());
  TermRef X = A.inputVar();
  TermRef U = Ctx.unitConst();
  A.setDelta(0, Rule::base({X}, 2, U));
  A.setDelta(1, Rule::base({X}, 3, U));
  A.setDelta(2, Rule::base({}, 0, U));
  A.setDelta(3, Rule::base({}, 1, U));
  for (unsigned Q = 0; Q < 4; ++Q)
    A.setFinalizer(Q, Rule::base({}, Q, U));
  Bst M = minimizeStates(A);
  EXPECT_EQ(M.numStates(), 2u) << "0~1 and 2~3";
}

TEST_F(MinimizeTest, ShrinksFusedProducts) {
  // Base64Decode x BytesToInt32 contains replicated consumer structure.
  Bst B64 = lib::makeBase64Decode(Ctx);
  Bst ToI = lib::makeBytesToInt32(Ctx);
  Solver S(Ctx);
  Bst Fused = fuse(B64, ToI, S);
  MinimizeStats St;
  Bst M = minimizeStates(Fused, &St);
  EXPECT_LE(M.numStates(), Fused.numStates());

  // Differential semantics on valid and junk inputs.
  SplitMix64 Rng(9);
  const char *Alpha = "ABCDEFabcdef0123456789+/=!";
  for (int I = 0; I < 25; ++I) {
    std::string In;
    for (size_t K = 0, N = Rng.below(12); K < N; ++K)
      In.push_back(Alpha[Rng.below(26)]);
    auto Before = runBst(Fused, lib::valuesFromBytes(In));
    auto After = runBst(M, lib::valuesFromBytes(In));
    ASSERT_EQ(Before.has_value(), After.has_value()) << In;
    if (Before)
      EXPECT_EQ(*Before, *After) << In;
  }
}

TEST_F(MinimizeTest, IdempotentAndStatsFilled) {
  Bst A = lib::makeBase64Decode(Ctx);
  MinimizeStats S1, S2;
  Bst M1 = minimizeStates(A, &S1);
  Bst M2 = minimizeStates(M1, &S2);
  EXPECT_EQ(M1.numStates(), M2.numStates());
  EXPECT_GE(S1.Rounds, 1u);
  EXPECT_EQ(S1.StatesBefore, A.numStates());
  EXPECT_EQ(S1.StatesAfter, M1.numStates());
}

} // namespace
