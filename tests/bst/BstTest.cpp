//===- tests/bst/BstTest.cpp - BST structure and interpreter tests --------===//

#include "bst/Bst.h"
#include "bst/BstPrint.h"
#include "bst/Interp.h"
#include "bst/Moves.h"
#include "bst/Transform.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class BstTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

TEST_F(BstTest, PaperUtf8Example) {
  // §2: input [0x61, 0xC5, 0x93] decodes to [0x61, 0x153] ("aœ").
  Bst A = lib::makeUtf8Decode2(Ctx);
  EXPECT_TRUE(A.wellFormed());
  auto Out = runBst(A, lib::valuesFromBytes("\x61\xC5\x93"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].bits(), 0x61u);
  EXPECT_EQ((*Out)[1].bits(), 0x153u);
}

TEST_F(BstTest, Utf8RejectsTruncatedSequence) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("\x61\xC5")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("\xC5\xC5")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("\x80")).has_value());
}

TEST_F(BstTest, ToIntParsesDecimal) {
  Bst A = lib::makeToInt(Ctx);
  EXPECT_TRUE(A.wellFormed());
  auto Out = runBst(A, lib::valuesFromAscii("1234"));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 1u);
  EXPECT_EQ((*Out)[0].bits(), 1234u);
}

TEST_F(BstTest, ToIntRejectsEmptyAndNonDigits) {
  Bst A = lib::makeToInt(Ctx);
  EXPECT_FALSE(runBst(A, {}).has_value()) << "finalizer at p0 is Undef";
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("12a")).has_value());
}

TEST_F(BstTest, TraceRecordsConfigurations) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  Trace T = traceBst(A, lib::valuesFromBytes("\x61\xC5\x93"));
  ASSERT_TRUE(T.Accepted);
  ASSERT_EQ(T.States.size(), 4u);
  EXPECT_EQ(T.States[0], 0u);
  EXPECT_EQ(T.States[1], 0u);
  EXPECT_EQ(T.States[2], 1u); // after lead byte
  EXPECT_EQ(T.States[3], 0u);
  // Register after the lead byte 0xC5: (0xC5 & 0x3F) << 6 = 0x140.
  EXPECT_EQ(T.Registers[2].bits(), 0x140u);
}

TEST_F(BstTest, MovesFlattenGuardsAlongPaths) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  std::vector<Move> Ms = movesOf(A);
  // q0 has two Base leaves, q1 has one.
  ASSERT_EQ(Ms.size(), 3u);
  unsigned FromQ0 = 0;
  for (const Move &M : Ms)
    if (M.Src == 0)
      ++FromQ0;
  EXPECT_EQ(FromQ0, 2u);
  // Every guard must be a boolean term.
  for (const Move &M : Ms)
    EXPECT_TRUE(M.Guard->type()->isBool());
  // Final moves: only q0 accepts.
  std::vector<FinalMove> Fs = finalMovesOf(A);
  ASSERT_EQ(Fs.size(), 1u);
  EXPECT_EQ(Fs[0].Src, 0u);
}

TEST_F(BstTest, CountBranches) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  // 3 transition leaves + 1 finalizer leaf.
  EXPECT_EQ(A.countBranches(), 4u);
}

TEST_F(BstTest, EliminateLeafReplacesExactBranch) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  std::vector<Move> Ms = movesOf(A);
  // Remove the multi-byte branch out of q0 (target state 1).
  const Rule *Leaf = nullptr;
  for (const Move &M : Ms)
    if (M.Src == 0 && M.Dst == 1)
      Leaf = M.Leaf;
  ASSERT_NE(Leaf, nullptr);
  RulePtr NewRule = eliminateLeaf(A.delta(0), Leaf);
  A.setDelta(0, NewRule);
  EXPECT_EQ(A.delta(0)->countBaseLeaves(), 1u);
  // Now multi-byte input rejects but ASCII still works.
  EXPECT_TRUE(runBst(A, lib::valuesFromBytes("az")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("\xC5\x93")).has_value());
}

TEST_F(BstTest, DeadEndElimination) {
  // Build a 3-state transducer where state 2 is a dead-end sink.
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 3, 0, Value::unit());
  TermRef X = A.inputVar();
  TermRef U = Ctx.unitConst();
  A.setDelta(0, Rule::ite(Ctx.mkUle(X, Ctx.bvConst(8, 10)),
                          Rule::base({X}, 0, U), Rule::base({}, 2, U)));
  A.setDelta(2, Rule::base({}, 2, U));
  A.setFinalizer(0, Rule::base({}, 0, U));
  ASSERT_TRUE(A.wellFormed());

  Bst B = eliminateDeadEnds(A);
  EXPECT_EQ(B.numStates(), 1u);
  EXPECT_EQ(B.delta(0)->countBaseLeaves(), 1u);
  // Semantics preserved: accepted inputs unchanged, others reject.
  std::vector<Value> Good = {Value::bv(8, 5)};
  std::vector<Value> Bad = {Value::bv(8, 50)};
  EXPECT_TRUE(runBst(B, Good).has_value());
  EXPECT_FALSE(runBst(B, Bad).has_value());
  EXPECT_EQ(*runBst(B, Good), *runBst(A, Good));
}

TEST_F(BstTest, RestrictStatesRemaps) {
  Bst A = lib::makeToBool(Ctx);
  std::vector<bool> Reach = forwardReachableStates(A);
  EXPECT_TRUE(Reach[0]);
  // All 10 states of ToBool are forward reachable.
  for (unsigned Q = 0; Q < A.numStates(); ++Q)
    EXPECT_TRUE(Reach[Q]) << "state " << Q;
}

TEST_F(BstTest, WellFormednessCatchesTypeErrors) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 1, 0, Value::unit());
  // Output of wrong width.
  A.setDelta(0, Rule::base({Ctx.bvConst(16, 1)}, 0, Ctx.unitConst()));
  std::string Err;
  EXPECT_FALSE(A.wellFormed(&Err));
  EXPECT_NE(Err.find("output"), std::string::npos);
}

TEST_F(BstTest, WellFormednessCatchesForeignVariables) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 1, 0, Value::unit());
  TermRef Foreign = Ctx.var("y", Ctx.bv(8));
  A.setDelta(0, Rule::base({Foreign}, 0, Ctx.unitConst()));
  std::string Err;
  EXPECT_FALSE(A.wellFormed(&Err));
  EXPECT_NE(Err.find("variable"), std::string::npos);
}

TEST_F(BstTest, FinalizerCannotUseInput) {
  Bst A(Ctx, Ctx.bv(8), Ctx.bv(8), Ctx.unitTy(), 1, 0, Value::unit());
  A.setFinalizer(0, Rule::base({A.inputVar()}, 0, Ctx.unitConst()));
  EXPECT_FALSE(A.wellFormed());
}

TEST_F(BstTest, PrinterShowsStates) {
  Bst A = lib::makeToInt(Ctx);
  std::string S = bstToString(A);
  EXPECT_NE(S.find("p0"), std::string::npos);
  EXPECT_NE(S.find("p1"), std::string::npos);
  EXPECT_NE(S.find("finalizer"), std::string::npos);
}

TEST_F(BstTest, RuleIteConstructorSimplifies) {
  TermRef U = Ctx.unitConst();
  RulePtr B1 = Rule::base({}, 0, U);
  RulePtr B2 = Rule::base({}, 0, U);
  // Equal branches collapse.
  EXPECT_EQ(Rule::ite(Ctx.var("c", Ctx.boolTy()), B1, B2), B1);
  // Constant conditions select a branch.
  RulePtr B3 = Rule::base({}, 1, U);
  EXPECT_EQ(Rule::ite(Ctx.trueConst(), B1, B3), B1);
  EXPECT_EQ(Rule::ite(Ctx.falseConst(), B1, B3), B3);
}

} // namespace
