//===- tests/stdlib/TransducersTest.cpp - Transducer zoo vs references ----===//

#include "bst/Interp.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "support/Stopwatch.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

class TransducersTest : public ::testing::Test {
protected:
  TermContext Ctx;
};

std::string randomUtf8(SplitMix64 &Rng, size_t NumChars, uint32_t MaxCp) {
  std::u16string S;
  for (size_t I = 0; I < NumChars; ++I) {
    uint32_t Cp = uint32_t(Rng.below(MaxCp));
    if (Cp >= 0xD800 && Cp <= 0xDFFF)
      Cp = 0x20; // avoid raw surrogates
    if (Cp <= 0xFFFF) {
      S.push_back(char16_t(Cp));
    } else {
      uint32_t Off = Cp - 0x10000;
      S.push_back(char16_t(0xD800 + (Off >> 10)));
      S.push_back(char16_t(0xDC00 + (Off & 0x3FF)));
    }
  }
  auto Enc = ref::utf8Encode(S);
  return *Enc;
}

TEST_F(TransducersTest, Utf8DecodeFullMatchesReference) {
  Bst A = lib::makeUtf8Decode(Ctx);
  ASSERT_TRUE(A.wellFormed());
  SplitMix64 Rng(1);
  for (int Iter = 0; Iter < 20; ++Iter) {
    std::string Bytes = randomUtf8(Rng, 40, 0x110000);
    auto Expected = ref::utf8Decode(Bytes);
    ASSERT_TRUE(Expected.has_value());
    auto Got = runBst(A, lib::valuesFromBytes(Bytes));
    ASSERT_TRUE(Got.has_value()) << "iteration " << Iter;
    EXPECT_EQ(lib::charsFromValues(*Got), *Expected);
  }
}

TEST_F(TransducersTest, Utf8EncodeMatchesReference) {
  Bst A = lib::makeUtf8Encode(Ctx);
  ASSERT_TRUE(A.wellFormed());
  SplitMix64 Rng(2);
  for (int Iter = 0; Iter < 20; ++Iter) {
    std::string Bytes = randomUtf8(Rng, 40, 0x110000);
    std::u16string Chars = *ref::utf8Decode(Bytes);
    auto Got = runBst(A, lib::valuesFromChars(Chars));
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(lib::bytesFromValues(*Got), Bytes);
  }
}

TEST_F(TransducersTest, Utf8EncodeRejectsLoneSurrogate) {
  Bst A = lib::makeUtf8Encode(Ctx);
  EXPECT_FALSE(runBst(A, lib::valuesFromChars(u"a\xD800z")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromChars(u"a\xDC00")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromChars(u"a\xD800")).has_value());
}

TEST_F(TransducersTest, Utf8RoundTripSupplementaryPlane) {
  Bst Dec = lib::makeUtf8Decode(Ctx);
  std::string Emoji = "\xF0\x9F\x98\x80"; // U+1F600
  auto Out = runBst(Dec, lib::valuesFromBytes(Emoji));
  ASSERT_TRUE(Out.has_value());
  ASSERT_EQ(Out->size(), 2u);
  EXPECT_EQ((*Out)[0].bits(), 0xD83Du);
  EXPECT_EQ((*Out)[1].bits(), 0xDE00u);
}

TEST_F(TransducersTest, Base64DecodeMatchesReference) {
  Bst A = lib::makeBase64Decode(Ctx);
  ASSERT_TRUE(A.wellFormed());
  SplitMix64 Rng(3);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::string Raw;
    size_t N = Rng.below(30);
    for (size_t I = 0; I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    std::string Encoded = ref::base64Encode(Raw);
    auto Got = runBst(A, lib::valuesFromBytes(Encoded));
    ASSERT_TRUE(Got.has_value()) << "input len " << N;
    EXPECT_EQ(lib::bytesFromValues(*Got), Raw);
  }
}

TEST_F(TransducersTest, Base64DecodeRejectsGarbage) {
  Bst A = lib::makeBase64Decode(Ctx);
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("ab!d")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("abc")).has_value())
      << "unpadded partial quad must reject";
  EXPECT_FALSE(runBst(A, lib::valuesFromBytes("ab==cd")).has_value())
      << "data after padding must reject";
}

TEST_F(TransducersTest, Base64EncodeMatchesReference) {
  Bst A = lib::makeBase64Encode(Ctx);
  ASSERT_TRUE(A.wellFormed());
  SplitMix64 Rng(4);
  for (int Iter = 0; Iter < 30; ++Iter) {
    std::string Raw;
    size_t N = Rng.below(30);
    for (size_t I = 0; I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    auto Got = runBst(A, lib::valuesFromBytes(Raw));
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(lib::bytesFromValues(*Got), ref::base64Encode(Raw));
  }
}

TEST_F(TransducersTest, BytesToInt32AndBack) {
  Bst ToI = lib::makeBytesToInt32(Ctx);
  Bst ToB = lib::makeInt32ToBytes(Ctx);
  std::string Bytes = {'\x78', '\x56', '\x34', '\x12', '\x01', '\x00',
                       '\x00', '\x00'};
  auto Ints = runBst(ToI, lib::valuesFromBytes(Bytes));
  ASSERT_TRUE(Ints.has_value());
  ASSERT_EQ(Ints->size(), 2u);
  EXPECT_EQ((*Ints)[0].bits(), 0x12345678u);
  EXPECT_EQ((*Ints)[1].bits(), 1u);
  auto Back = runBst(ToB, *Ints);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(lib::bytesFromValues(*Back), Bytes);
  // Trailing partial group rejects.
  EXPECT_FALSE(runBst(ToI, lib::valuesFromBytes("abc")).has_value());
}

TEST_F(TransducersTest, ToBoolAcceptsExactly) {
  Bst A = lib::makeToBool(Ctx);
  auto T = runBst(A, lib::valuesFromAscii("true"));
  ASSERT_TRUE(T.has_value());
  EXPECT_EQ((*T)[0].bits(), 1u);
  auto F = runBst(A, lib::valuesFromAscii("false"));
  ASSERT_TRUE(F.has_value());
  EXPECT_EQ((*F)[0].bits(), 0u);
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("truex")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("tru")).has_value());
  EXPECT_FALSE(runBst(A, lib::valuesFromAscii("")).has_value());
}

TEST_F(TransducersTest, IntToDecimalFormatsAllMagnitudes) {
  Bst A = lib::makeIntToDecimal(Ctx);
  ASSERT_TRUE(A.wellFormed());
  std::vector<uint32_t> Cases = {0,      7,          10,        99,
                                 100,    12345,      99999,     1000000,
                                 4294967295u, 1000000000u};
  for (uint32_t V : Cases) {
    auto Out = runBst(A, lib::valuesFromInts({V}));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::intToDecimal(V)) << V;
  }
}

TEST_F(TransducersTest, WindowedAverageMatchesReference) {
  Bst A = lib::makeWindowedAverage(Ctx, 10);
  ASSERT_TRUE(A.wellFormed());
  SplitMix64 Rng(5);
  std::vector<uint32_t> In;
  for (int I = 0; I < 50; ++I)
    In.push_back(uint32_t(Rng.below(1000)));
  auto Out = runBst(A, lib::valuesFromInts(In));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::intsFromValues(*Out), ref::windowedAverage(In, 10));
}

TEST_F(TransducersTest, WindowedAverageShortInputEmitsNothing) {
  Bst A = lib::makeWindowedAverage(Ctx, 10);
  auto Out = runBst(A, lib::valuesFromInts({1, 2, 3}));
  ASSERT_TRUE(Out.has_value());
  EXPECT_TRUE(Out->empty());
}

TEST_F(TransducersTest, DeltaMatchesReference) {
  Bst A = lib::makeDelta(Ctx);
  std::vector<uint32_t> In = {10, 13, 11, 50};
  auto Out = runBst(A, lib::valuesFromInts(In));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::intsFromValues(*Out), ref::deltas(In));
  // Wrap-around on decrease (unsigned subtraction).
  EXPECT_EQ((*Out)[1].bits(), uint32_t(11 - 13));
}

TEST_F(TransducersTest, Aggregators) {
  Bst Max = lib::makeMax(Ctx);
  Bst Min = lib::makeMin(Ctx);
  Bst Sum = lib::makeSum(Ctx);
  Bst Avg = lib::makeAverage(Ctx);
  std::vector<uint32_t> In = {5, 17, 3, 12};
  EXPECT_EQ((*runBst(Max, lib::valuesFromInts(In)))[0].bits(), 17u);
  EXPECT_EQ((*runBst(Min, lib::valuesFromInts(In)))[0].bits(), 3u);
  EXPECT_EQ((*runBst(Sum, lib::valuesFromInts(In)))[0].bits(), 37u);
  EXPECT_EQ((*runBst(Avg, lib::valuesFromInts(In)))[0].bits(), 9u);
  // Empty input rejects for all of them.
  EXPECT_FALSE(runBst(Max, {}).has_value());
  EXPECT_FALSE(runBst(Min, {}).has_value());
  EXPECT_FALSE(runBst(Sum, {}).has_value());
  EXPECT_FALSE(runBst(Avg, {}).has_value());
}

TEST_F(TransducersTest, LineCount) {
  Bst A = lib::makeLineCount(Ctx);
  auto Out = runBst(A, lib::valuesFromAscii("a\nbb\n\nc"));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ((*Out)[0].bits(), 3u);
  auto Empty = runBst(A, {});
  ASSERT_TRUE(Empty.has_value());
  EXPECT_EQ((*Empty)[0].bits(), 0u);
}

TEST_F(TransducersTest, RepMatchesReference) {
  Bst A = lib::makeRep(Ctx);
  ASSERT_TRUE(A.wellFormed());
  std::vector<std::u16string> Cases = {
      u"hello",
      u"a\xD83D\xDE00z",          // valid pair
      u"a\xD83Dz",                // lone high
      u"a\xDE00z",                // lone low
      u"\xD83D",                  // high at end
      u"\xD83D\xD83D\xDE00",      // high then valid pair
      u"\xDC00\xD800\xDC00\xD800" // mixed mess
  };
  for (const auto &S : Cases) {
    auto Out = runBst(A, lib::valuesFromChars(S));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::repair(S));
  }
}

TEST_F(TransducersTest, HtmlEncodeMatchesReference) {
  Bst A = lib::makeHtmlEncode(Ctx);
  ASSERT_TRUE(A.wellFormed());
  std::vector<std::u16string> Cases = {
      u"hello world",
      u"<script>alert(\"x&y\")</script>",
      u"caf\x00E9 \x4E2D\x6587",
      u"\xD83D\xDE00", // emoji: encoded via CP
      u"\x7F\xA0\xAD\x370"};
  for (const auto &S : Cases) {
    auto Out = runBst(A, lib::valuesFromChars(S));
    ASSERT_TRUE(Out.has_value());
    EXPECT_EQ(lib::charsFromValues(*Out), ref::htmlEncode(S));
  }
}

TEST_F(TransducersTest, HtmlEncodeEntityBranches) {
  Bst A = lib::makeHtmlEncode(Ctx);
  auto Out = runBst(A, lib::valuesFromChars(u"<&>\""));
  ASSERT_TRUE(Out.has_value());
  EXPECT_EQ(lib::charsFromValues(*Out), u"&lt;&amp;&gt;&quot;");
}

TEST_F(TransducersTest, ReferenceBase64RoundTrip) {
  SplitMix64 Rng(6);
  for (int Iter = 0; Iter < 50; ++Iter) {
    std::string Raw;
    size_t N = Rng.below(64);
    for (size_t I = 0; I < N; ++I)
      Raw.push_back(char(Rng.below(256)));
    auto Back = ref::base64Decode(ref::base64Encode(Raw));
    ASSERT_TRUE(Back.has_value());
    EXPECT_EQ(*Back, Raw);
  }
}

} // namespace
