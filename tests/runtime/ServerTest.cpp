//===- tests/runtime/ServerTest.cpp - efc-serve server layer --------------===//
//
// In-process Server over a temp Unix socket: frame protocol round-trips,
// chunked feeding (the CI smoke scenario), error paths, cache sharing
// across sessions, concurrent clients, and clean shutdown.
//
//===----------------------------------------------------------------------===//

#include "runtime/Server.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

const char *CsvMaxSpec = "frontend=regex\n"
                         "pattern=(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*\n"
                         "agg=max\n"
                         "format=decimal\n";

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

struct Reply {
  bool Ok = false;
  std::string Name;
  std::string Body;
};

bool roundTrip(int Fd, const std::string &Req, Reply &R) {
  if (!sendFrame(Fd, Req))
    return false;
  std::string Resp;
  if (!recvFrame(Fd, Resp) || Resp.empty())
    return false;
  R.Ok = Resp[0] == 'k';
  size_t Nl = Resp.find('\n');
  R.Name = Resp.substr(1, Nl == std::string::npos ? std::string::npos
                                                  : Nl - 1);
  R.Body = Nl == std::string::npos ? std::string() : Resp.substr(Nl + 1);
  return true;
}

class ServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    Sock = ::testing::TempDir() + "/efc_srv_" +
           std::to_string(uint64_t(getpid())) + "_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".sock";
    ServerOptions O;
    O.SocketPath = Sock;
    // Two shards so the suite exercises the round-robin fd handoff and
    // cross-shard session forwarding, not just the 1-shard fast path.
    O.Shards = 2;
    O.CacheCapacity = 8;
    Srv = std::make_unique<Server>(O);
    std::string Err;
    ASSERT_TRUE(Srv->start(&Err)) << Err;
  }
  void TearDown() override {
    if (Srv)
      Srv->stop();
    ::unlink(Sock.c_str());
  }

  std::string Sock;
  std::unique_ptr<Server> Srv;
};

TEST_F(ServerTest, OpenFeedFinishInSevenByteChunks) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Os1\nvm\n") + CsvMaxSpec, R));
  EXPECT_TRUE(R.Ok) << R.Body;
  EXPECT_EQ(R.Name, "s1");

  std::string In = "a,17,x\nb,99,y\nc,40,z\n";
  std::string Out;
  for (size_t I = 0; I < In.size(); I += 7) {
    ASSERT_TRUE(roundTrip(Fd, "Fs1\n" + In.substr(I, 7), R));
    ASSERT_TRUE(R.Ok) << R.Body;
    Out += R.Body;
  }
  ASSERT_TRUE(roundTrip(Fd, "Es1", R));
  EXPECT_TRUE(R.Ok) << R.Body;
  Out += R.Body;
  EXPECT_EQ(Out, "99");
  ::close(Fd);
}

TEST_F(ServerTest, ErrorPaths) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  // Feed to a session that was never opened.
  ASSERT_TRUE(roundTrip(Fd, "Fnope\nabc", R));
  EXPECT_FALSE(R.Ok);
  EXPECT_EQ(R.Name, "nope");
  // Open with a bad spec.
  ASSERT_TRUE(roundTrip(Fd, "Obad\nvm\nfrontend=wat\npattern=x\n", R));
  EXPECT_FALSE(R.Ok);
  // Open with a bad backend keyword.
  ASSERT_TRUE(
      roundTrip(Fd, std::string("Obad2\nquantum\n") + CsvMaxSpec, R));
  EXPECT_FALSE(R.Ok);
  // Duplicate open.
  ASSERT_TRUE(roundTrip(Fd, std::string("Odup\nvm\n") + CsvMaxSpec, R));
  EXPECT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, std::string("Odup\nvm\n") + CsvMaxSpec, R));
  EXPECT_FALSE(R.Ok) << "second open of one name must fail";
  // After finish, the session is gone.  (Feed a row first: max over an
  // empty stream rejects at the finalizer.)
  ASSERT_TRUE(roundTrip(Fd, "Fdup\na,5,x\n", R));
  EXPECT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, "Edup", R));
  EXPECT_TRUE(R.Ok);
  ASSERT_TRUE(roundTrip(Fd, "Fdup\nxyz", R));
  EXPECT_FALSE(R.Ok);
  // Rejected input (0xFF is not UTF-8) surfaces as an error reply.
  ASSERT_TRUE(roundTrip(Fd, std::string("Orej\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok);
  ASSERT_TRUE(roundTrip(Fd, std::string("Frej\n\xff"), R));
  EXPECT_FALSE(R.Ok);
  ::close(Fd);
}

TEST_F(ServerTest, CloseDiscardsSession) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Oc1\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok);
  ASSERT_TRUE(roundTrip(Fd, "Cc1", R));
  EXPECT_TRUE(R.Ok);
  ASSERT_TRUE(roundTrip(Fd, "Fc1\nabc", R));
  EXPECT_FALSE(R.Ok) << "closed session must be gone";
  // The name is reusable after close.
  ASSERT_TRUE(roundTrip(Fd, std::string("Oc1\nvm\n") + CsvMaxSpec, R));
  EXPECT_TRUE(R.Ok);
  ::close(Fd);
}

TEST_F(ServerTest, SessionsShareThePipelineCache) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Oa\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, std::string("Ob\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, "S", R));
  ASSERT_TRUE(R.Ok);
  EXPECT_NE(R.Body.find("sessions_opened=2"), std::string::npos) << R.Body;
  EXPECT_NE(R.Body.find("builds=1"), std::string::npos)
      << "same spec must fuse once: " << R.Body;
  EXPECT_NE(R.Body.find("cache: "), std::string::npos);
  ::close(Fd);
}

TEST_F(ServerTest, ConcurrentClientsInterleave) {
  constexpr int N = 4;
  std::vector<std::thread> Ts;
  std::vector<std::string> Outs(N);
  for (int K = 0; K < N; ++K)
    Ts.emplace_back([&, K] {
      int Fd = connectTo(Sock);
      ASSERT_GE(Fd, 0);
      Reply R;
      std::string Name = "w" + std::to_string(K);
      ASSERT_TRUE(
          roundTrip(Fd, "O" + Name + "\nvm\n" + CsvMaxSpec, R));
      ASSERT_TRUE(R.Ok) << R.Body;
      // Each client streams a different max; 1-byte chunks maximize
      // interleaving across the worker pool.
      std::string In = "a," + std::to_string(10 + K) + ",x\n";
      for (char Ch : In) {
        ASSERT_TRUE(roundTrip(Fd, "F" + Name + "\n" + std::string(1, Ch), R));
        ASSERT_TRUE(R.Ok) << R.Body;
        Outs[K] += R.Body;
      }
      ASSERT_TRUE(roundTrip(Fd, "E" + Name, R));
      ASSERT_TRUE(R.Ok) << R.Body;
      Outs[K] += R.Body;
      ::close(Fd);
    });
  for (auto &T : Ts)
    T.join();
  for (int K = 0; K < N; ++K)
    EXPECT_EQ(Outs[K], std::to_string(10 + K));
}

TEST_F(ServerTest, MetricsFrameCoversEveryFamily) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  // Drive one session end to end so the serving families have data.
  ASSERT_TRUE(roundTrip(Fd, std::string("Om1\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, "Fm1\na,31,x\n", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, "Em1", R));
  ASSERT_TRUE(R.Ok) << R.Body;

  ASSERT_TRUE(roundTrip(Fd, "M", R));
  ASSERT_TRUE(R.Ok);
  // One dump must cover every subsystem the observability layer spans:
  // solver, fusion, RBBE, cache, fast path, streaming and the server.
  for (const char *Family :
       {"efc_solver_checks_total", "efc_fusion_runs_total",
        "efc_rbbe_runs_total", "efc_cache_misses_total",
        "efc_fastpath_plan_table_states_total", "efc_stream_bytes_in_total",
        "efc_server_frames_in_total", "efc_server_feed_latency_seconds",
        "efc_server_queue_depth"})
    EXPECT_NE(R.Body.find(Family), std::string::npos)
        << "family missing from 'M' dump: " << Family;
  // Exposition syntax, not just substrings: HELP/TYPE headers and a
  // labeled per-backend series.
  EXPECT_NE(R.Body.find("# TYPE efc_server_feed_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(R.Body.find("efc_stream_bytes_in_total{backend=\"vm\"}"),
            std::string::npos);
  ::close(Fd);
}

// A client that vanishes mid-stream: the server must count the replies it
// could not deliver and doom the session instead of silently dropping
// output on the floor.
TEST_F(ServerTest, DeadClientCountsDroppedFrames) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  // An echoing pipeline (no aggregate) makes every feed reply carry the
  // matched bytes back, so the reply volume tracks the input volume.
  const char *EchoSpec = "frontend=regex\n"
                         "pattern=(?<v>\\d+)\n"
                         "agg=none\n"
                         "format=lines\n";
  ASSERT_TRUE(roundTrip(Fd, std::string("Od1\nvm\n") + EchoSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  // Pipeline ~2 MB of digit rows without ever reading a reply, then
  // vanish: the echoed replies overflow the socket buffer, the rest
  // queue on the connection, and the close turns them into
  // undeliverable frames.
  std::string Row;
  while (Row.size() < 4096)
    Row += "1234567890\n";
  for (int I = 0; I < 512; ++I)
    if (!sendFrame(Fd, "Fd1\n" + Row))
      break;
  ::close(Fd);

  // The shard notices the dead peer on its next flush; poll the public
  // counter rather than sleeping blind.
  bool Dropped = false;
  for (int I = 0; I < 500 && !Dropped; ++I) {
    Dropped = Srv->statsText().find("frames_dropped=0") == std::string::npos;
    if (!Dropped)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Dropped) << Srv->statsText();

  // The server itself stays healthy for other clients.
  int Fd2 = connectTo(Sock);
  ASSERT_GE(Fd2, 0);
  ASSERT_TRUE(roundTrip(Fd2, std::string("Od2\nvm\n") + CsvMaxSpec, R));
  EXPECT_TRUE(R.Ok) << R.Body;
  ::close(Fd2);
}

TEST_F(ServerTest, ShutdownFrameStopsTheServer) {
  int Fd = connectTo(Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, "Q", R));
  EXPECT_TRUE(R.Ok);
  ::close(Fd);
  Srv->wait(); // must return (and not hang) after a 'Q' frame
  Srv.reset();
}

TEST(ServerStandalone, StartFailsOnBadPath) {
  ServerOptions O;
  O.SocketPath = "/nonexistent-dir-efc/x.sock";
  Server S(O);
  std::string Err;
  EXPECT_FALSE(S.start(&Err));
  EXPECT_FALSE(Err.empty());
}

} // namespace
