//===- tests/runtime/MetricsConsistencyTest.cpp - Cross-backend metrics ---===//
//
// The same Figure 9 pipeline over the same input must tell the same story
// in the metrics registry regardless of backend: per-backend
// efc_stream_bytes_{in,out}_total deltas equal the session's own
// byte counters, which in turn agree across VM, byte-class fast path and
// native.  The fast-path run-kernel counters folded into the registry
// must match the cursor-local telemetry exactly (the delta fold in
// StreamSession::drain must not double-count across chunks).
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "data/Datasets.h"
#include "runtime/StreamSession.h"
#include "support/Metrics.h"
#include "vm/FastPath.h"

#include <gtest/gtest.h>

using namespace efc;
using namespace efc::bench;
using namespace efc::runtime;

namespace {

/// Registry deltas for one backend label, snapshotted at construction.
struct StreamDeltas {
  metrics::Counter &Sessions, &In, &Out;
  uint64_t Sessions0, In0, Out0;

  explicit StreamDeltas(const char *Label)
      : Sessions(metrics::Registry::instance().counter(
            "efc_stream_sessions_total", "", Label)),
        In(metrics::Registry::instance().counter(
            "efc_stream_bytes_in_total", "", Label)),
        Out(metrics::Registry::instance().counter(
            "efc_stream_bytes_out_total", "", Label)),
        Sessions0(Sessions.value()), In0(In.value()), Out0(Out.value()) {}

  uint64_t sessions() const { return Sessions.value() - Sessions0; }
  uint64_t in() const { return In.value() - In0; }
  uint64_t out() const { return Out.value() - Out0; }
};

/// Streams \p In through \p S in 97-byte chunks (coprime with the run
/// kernels' span lengths, so runs get cut mid-chunk) and returns the
/// output.
std::string pump(StreamSession &S, const std::string &In) {
  std::string Got;
  for (size_t I = 0; I < In.size(); I += 97) {
    EXPECT_TRUE(S.feed(std::string_view(In).substr(I, 97)));
    Got += S.takeOutput();
  }
  EXPECT_TRUE(S.finish());
  Got += S.takeOutput();
  return Got;
}

TEST(MetricsConsistency, Fig9CsvAgreesAcrossBackends) {
  BuiltPipeline P = makeCsvMaxPipeline();
  ASSERT_TRUE(P.CompiledFused && P.FastPlan);
  std::string In = data::makeCsv(77, 8192, 6, 4, 9999);

  StreamDeltas VmD("backend=\"vm\"");
  StreamSession Vm = StreamSession::overVm(*P.CompiledFused);
  std::string VmOut = pump(Vm, In);
  EXPECT_EQ(VmD.sessions(), 1u);
  EXPECT_EQ(VmD.in(), In.size());
  EXPECT_EQ(VmD.in(), Vm.bytesIn());
  EXPECT_EQ(VmD.out(), Vm.bytesOut());
  EXPECT_EQ(VmD.out(), VmOut.size());

  StreamDeltas FastD("backend=\"fastpath\"");
  metrics::Counter &Runs = metrics::Registry::instance().counter(
      "efc_fastpath_runs_total");
  metrics::Counter &RunElems = metrics::Registry::instance().counter(
      "efc_fastpath_run_elements_total");
  uint64_t Runs0 = Runs.value(), RunElems0 = RunElems.value();
  StreamSession Fast = StreamSession::overFast(*P.FastPlan,
                                               *P.CompiledFused);
  std::string FastOut = pump(Fast, In);
  EXPECT_EQ(FastD.sessions(), 1u);
  EXPECT_EQ(FastD.in(), In.size());
  EXPECT_EQ(FastD.out(), Fast.bytesOut());
  // The registry fold must equal the cursor-local telemetry exactly:
  // drain() folds per chunk, and double-counting would show here.
  EXPECT_EQ(Runs.value() - Runs0, Fast.fastRuns());
  EXPECT_EQ(RunElems.value() - RunElems0, Fast.fastRunElements());
  EXPECT_GT(Fast.fastRuns(), 0u) << "CSV max should drive run kernels";

  // The backends must agree with each other, not just with themselves.
  EXPECT_EQ(FastOut, VmOut);
  EXPECT_EQ(Fast.bytesOut(), Vm.bytesOut());

  if (!P.Native)
    GTEST_SKIP() << "no host compiler: native backend unavailable";
  auto Nat = StreamSession::overNative(*P.Native);
  ASSERT_TRUE(Nat.has_value());
  StreamDeltas NatD("backend=\"native\"");
  // overNative already bumped sessions before the snapshot; re-open so
  // the delta covers a whole session.
  Nat = StreamSession::overNative(*P.Native);
  std::string NatOut = pump(*Nat, In);
  EXPECT_EQ(NatD.sessions(), 1u);
  EXPECT_EQ(NatD.in(), In.size());
  EXPECT_EQ(NatD.out(), Nat->bytesOut());
  EXPECT_EQ(NatOut, VmOut);
}

// A rejecting stream must still account its bytes: everything fed before
// the reject counts as input, everything drained counts as output.
TEST(MetricsConsistency, RejectedStreamStillCounts) {
  BuiltPipeline P = makeCsvMaxPipeline();
  ASSERT_TRUE(P.CompiledFused);
  StreamDeltas D("backend=\"vm\"");
  StreamSession S = StreamSession::overVm(*P.CompiledFused);
  std::string Bad = "a,17,x\n\xff"; // 0xFF rejects at the UTF-8 decoder
  EXPECT_FALSE(S.feed(Bad) && S.finish());
  EXPECT_EQ(D.in(), S.bytesIn());
  EXPECT_EQ(D.out(), S.bytesOut());
  EXPECT_GT(D.in(), 0u);
}

// The one-shot runFastPath entry point folds the cursor's counters too —
// and must not interfere with the streaming fold.
TEST(MetricsConsistency, OneShotRunFastPathFoldsCounters) {
  BuiltPipeline P = makeCsvMaxPipeline();
  ASSERT_TRUE(P.CompiledFused && P.FastPlan);
  std::string In = data::makeCsv(78, 4096, 6, 4, 9999);
  std::vector<uint64_t> Raw;
  Raw.reserve(In.size());
  for (unsigned char C : In)
    Raw.push_back(C);

  metrics::Counter &Runs = metrics::Registry::instance().counter(
      "efc_fastpath_runs_total");
  uint64_t Runs0 = Runs.value();
  auto Out = runFastPath(*P.FastPlan, *P.CompiledFused, Raw);
  ASSERT_TRUE(Out.has_value());
  EXPECT_GT(Runs.value(), Runs0) << "run kernels should have fired";
}

} // namespace
