//===- tests/runtime/FramingTest.cpp - Sharded server transport -----------===//
//
// The transport layer of the sharded epoll server: in-place frame
// parsing under torn input (every byte split), oversized-length
// rejection, the vectored reply queue, 100+ interleaved connections on
// one shard, cross-shard session forwarding, graceful drain, idle
// eviction, and a frame-bytes fuzzer (EFC_FUZZ_SEED).
//
//===----------------------------------------------------------------------===//

#include "runtime/NetBuffers.h"
#include "runtime/Server.h"
#include "support/Stopwatch.h"

#include "common/FuzzSeed.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

const char *CsvMaxSpec = "frontend=regex\n"
                         "pattern=(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*\n"
                         "agg=max\n"
                         "format=decimal\n";

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

struct Reply {
  bool Ok = false;
  std::string Name;
  std::string Body;
};

bool readReply(int Fd, Reply &R) {
  std::string Resp;
  if (!recvFrame(Fd, Resp) || Resp.empty())
    return false;
  R.Ok = Resp[0] == 'k';
  size_t Nl = Resp.find('\n');
  R.Name =
      Resp.substr(1, Nl == std::string::npos ? std::string::npos : Nl - 1);
  R.Body = Nl == std::string::npos ? std::string() : Resp.substr(Nl + 1);
  return true;
}

bool roundTrip(int Fd, const std::string &Req, Reply &R) {
  return sendFrame(Fd, Req) && readReply(Fd, R);
}

/// The raw wire bytes of one request frame.
std::string wireBytes(const std::string &Payload) {
  std::string W;
  uint32_t N = uint32_t(Payload.size());
  W.push_back(char(N & 0xFF));
  W.push_back(char((N >> 8) & 0xFF));
  W.push_back(char((N >> 16) & 0xFF));
  W.push_back(char((N >> 24) & 0xFF));
  W += Payload;
  return W;
}

bool writeExact(int Fd, const char *P, size_t N) {
  while (N) {
    ssize_t W = ::send(Fd, P, N, MSG_NOSIGNAL);
    if (W <= 0)
      return false;
    P += W;
    N -= size_t(W);
  }
  return true;
}

/// Owns a temp-socket server for one test.
struct TestServer {
  explicit TestServer(unsigned Shards, uint64_t IdleMs = 0) {
    Sock = ::testing::TempDir() + "/efc_frm_" +
           std::to_string(uint64_t(getpid())) + "_" +
           std::to_string(++Instances) + ".sock";
    ServerOptions O;
    O.SocketPath = Sock;
    O.Shards = Shards;
    O.CacheCapacity = 8;
    O.IdleMs = IdleMs;
    Srv = std::make_unique<Server>(O);
  }
  ~TestServer() {
    if (Srv)
      Srv->stop();
    ::unlink(Sock.c_str());
  }
  bool start(std::string *Err) { return Srv->start(Err); }

  static unsigned Instances;
  std::string Sock;
  std::unique_ptr<Server> Srv;
};
unsigned TestServer::Instances = 0;

//===----------------------------------------------------------------------===//
// InputSlab: torn frames at every byte, in place
//===----------------------------------------------------------------------===//

TEST(InputSlab, TornAtEveryByteStaysBuffered) {
  const std::string Payload = "Fs\nhello world";
  const std::string Wire = wireBytes(Payload);
  // Split the frame at every byte position: everything before the last
  // byte must parse as NeedMore, never as a frame or an error.
  for (size_t Split = 0; Split < Wire.size(); ++Split) {
    InputSlab In;
    In.reserveWritable(Wire.size());
    memcpy(In.writePtr(), Wire.data(), Split);
    In.commit(Split);
    std::string_view F;
    EXPECT_EQ(In.nextFrame(64u << 20, &F), InputSlab::ParseResult::NeedMore)
        << "split at byte " << Split;
    In.reserveWritable(Wire.size() - Split);
    memcpy(In.writePtr(), Wire.data() + Split, Wire.size() - Split);
    In.commit(Wire.size() - Split);
    ASSERT_EQ(In.nextFrame(64u << 20, &F), InputSlab::ParseResult::Frame)
        << "split at byte " << Split;
    EXPECT_EQ(F, Payload);
    In.consumeFrame(F.size());
    EXPECT_EQ(In.pending(), 0u);
  }
}

TEST(InputSlab, SingleByteCommitsAcrossManyFrames) {
  // Three frames delivered one byte at a time — the pathological chunking
  // the old recvFrame loop handled with blocking reads.
  std::vector<std::string> Payloads = {"Fa\nx", "", std::string(257, 'z')};
  std::string Wire;
  for (auto &P : Payloads)
    Wire += wireBytes(P);
  InputSlab In;
  size_t Got = 0;
  for (char Ch : Wire) {
    In.reserveWritable(1);
    *In.writePtr() = Ch;
    In.commit(1);
    std::string_view F;
    while (In.nextFrame(64u << 20, &F) == InputSlab::ParseResult::Frame) {
      ASSERT_LT(Got, Payloads.size());
      EXPECT_EQ(F, Payloads[Got]);
      In.consumeFrame(F.size());
      ++Got;
    }
  }
  EXPECT_EQ(Got, Payloads.size());
  EXPECT_EQ(In.pending(), 0u);
}

TEST(InputSlab, CompactionPreservesTornFrame) {
  // Parse one frame, leave a torn second frame buffered, then force a
  // compaction (reserve beyond capacity): the remainder must survive the
  // memmove intact.
  std::string A = wireBytes("Fa\nfirst");
  std::string B = wireBytes(std::string(9000, 'q')); // bigger than the slab
  InputSlab In;
  In.reserveWritable(A.size() + 10);
  memcpy(In.writePtr(), A.data(), A.size());
  In.commit(A.size());
  size_t TornLen = std::min<size_t>(10, B.size());
  In.reserveWritable(TornLen);
  memcpy(In.writePtr(), B.data(), TornLen);
  In.commit(TornLen);

  std::string_view F;
  ASSERT_EQ(In.nextFrame(64u << 20, &F), InputSlab::ParseResult::Frame);
  EXPECT_EQ(F, "Fa\nfirst");
  In.consumeFrame(F.size());

  // Now demand room for the rest of B: Head > 0, so this compacts.
  In.reserveWritable(B.size() - TornLen);
  memcpy(In.writePtr(), B.data() + TornLen, B.size() - TornLen);
  In.commit(B.size() - TornLen);
  ASSERT_EQ(In.nextFrame(64u << 20, &F), InputSlab::ParseResult::Frame);
  EXPECT_EQ(F, std::string(9000, 'q'));
}

TEST(InputSlab, OversizedLengthIsUnrecoverable) {
  InputSlab In;
  std::string Wire = wireBytes("x");
  Wire[3] = char(0x7F); // length now ~2 GB
  In.reserveWritable(Wire.size());
  memcpy(In.writePtr(), Wire.data(), Wire.size());
  In.commit(Wire.size());
  std::string_view F;
  EXPECT_EQ(In.nextFrame(64u << 20, &F), InputSlab::ParseResult::TooLarge);
}

//===----------------------------------------------------------------------===//
// OutQueue: gathering flush and doomed-session accounting
//===----------------------------------------------------------------------===//

TEST(OutQueue, GatheredFlushMatchesBlockingFraming) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  OutQueue Q;
  Q.push('k', "s1", std::string("body-one"), "s1");
  Q.push('e', "s2", std::string(), "s2");
  Q.push('k', "", std::string("stats"), "");
  EXPECT_EQ(Q.frames(), 3u);
  uint64_t Wrote = 0;
  ASSERT_EQ(Q.flush(Sp[0], &Wrote), OutQueue::FlushResult::Drained);
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.bytes(), 0u);
  // The peer must see exactly the frames the blocking recvFrame helper
  // understands: one writev path, one blocking path, same wire format.
  std::string R1, R2, R3;
  ASSERT_TRUE(recvFrame(Sp[1], R1));
  ASSERT_TRUE(recvFrame(Sp[1], R2));
  ASSERT_TRUE(recvFrame(Sp[1], R3));
  EXPECT_EQ(R1, "ks1\nbody-one");
  EXPECT_EQ(R2, "es2\n");
  EXPECT_EQ(R3, "k\nstats");
  EXPECT_EQ(Wrote, uint64_t(4 + R1.size() + 4 + R2.size() + 4 + R3.size()));
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(OutQueue, BlockedFlushResumesMidFrame) {
  int Sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Sp), 0);
  int Small = 4096;
  ASSERT_EQ(::setsockopt(Sp[0], SOL_SOCKET, SO_SNDBUF, &Small,
                         sizeof(Small)),
            0);
  fcntl(Sp[0], F_SETFL, O_NONBLOCK);
  OutQueue Q;
  std::string Big(1u << 20, 'b');
  std::string Expect = Big;
  Q.push('k', "big", std::move(Big), "big");
  // Flush → Blocked with a partially-written frame; drain the reader and
  // keep flushing until the whole megabyte crossed, split mid-frame many
  // times.
  std::string Got;
  char Buf[8192];
  for (int Rounds = 0; Rounds < 100000 && !Q.empty(); ++Rounds) {
    OutQueue::FlushResult R = Q.flush(Sp[0]);
    ASSERT_NE(R, OutQueue::FlushResult::Error);
    ssize_t N;
    while ((N = ::recv(Sp[1], Buf, sizeof(Buf), MSG_DONTWAIT)) > 0)
      Got.append(Buf, size_t(N));
  }
  EXPECT_TRUE(Q.empty());
  ssize_t N;
  while ((N = ::recv(Sp[1], Buf, sizeof(Buf), MSG_DONTWAIT)) > 0)
    Got.append(Buf, size_t(N));
  ASSERT_GE(Got.size(), 4u);
  // Strip the frame header and status line, compare the body.
  size_t Nl = Got.find('\n', 4);
  ASSERT_NE(Nl, std::string::npos);
  EXPECT_EQ(Got.substr(Nl + 1), Expect);
  ::close(Sp[0]);
  ::close(Sp[1]);
}

TEST(OutQueue, DropAllReportsEachLostSessionOnce) {
  OutQueue Q;
  Q.push('k', "a", std::string("x"), "a");
  Q.push('k', "a", std::string("y"), "a");
  Q.push('k', "b", std::string("z"), "b");
  Q.push('k', "", std::string("stats"), ""); // no session tag
  std::vector<std::string> Lost;
  EXPECT_EQ(Q.dropAll(&Lost), 4u);
  EXPECT_EQ(Lost, (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(Q.empty());
  EXPECT_EQ(Q.bytes(), 0u);
}

//===----------------------------------------------------------------------===//
// Server: torn and malformed framing over the socket
//===----------------------------------------------------------------------===//

TEST(ServeTransport, TornFeedFramesSplitAtEveryByte) {
  TestServer T(1);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  int Fd = connectTo(T.Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Ot\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  // Each row rides in a frame written in two halves, the cut advancing
  // one byte per row so every header and payload split hits the wire.
  std::string Out;
  int Max = 0;
  for (int I = 0; I < 24; ++I) {
    int V = 100 + I;
    Max = std::max(Max, V);
    std::string Wire = wireBytes("Ft\na," + std::to_string(V) + ",x\n");
    size_t Split = size_t(I) % Wire.size();
    ASSERT_TRUE(writeExact(Fd, Wire.data(), Split));
    // A micro-pause makes the kernel likely to deliver two reads; the
    // InputSlab suite covers every split deterministically regardless.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(writeExact(Fd, Wire.data() + Split, Wire.size() - Split));
    ASSERT_TRUE(readReply(Fd, R));
    ASSERT_TRUE(R.Ok) << R.Body;
    Out += R.Body;
  }
  ASSERT_TRUE(roundTrip(Fd, "Et", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  Out += R.Body;
  EXPECT_EQ(Out, std::to_string(Max));
  ::close(Fd);
}

TEST(ServeTransport, OversizedFrameGetsErrorThenClose) {
  TestServer T(1);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  int Fd = connectTo(T.Sock);
  ASSERT_GE(Fd, 0);
  // A header declaring a 1 GB payload: the server cannot resync past it,
  // so it must say why and hang up.
  unsigned char Hdr[4] = {0, 0, 0, 0x40};
  ASSERT_TRUE(writeExact(Fd, reinterpret_cast<char *>(Hdr), 4));
  Reply R;
  ASSERT_TRUE(readReply(Fd, R));
  EXPECT_FALSE(R.Ok);
  EXPECT_NE(R.Body.find("exceeds"), std::string::npos) << R.Body;
  std::string Rest;
  EXPECT_FALSE(recvFrame(Fd, Rest)) << "connection must be closed";
  ::close(Fd);
}

TEST(ServeTransport, InterleavedFramesFromOverHundredConnsOneShard) {
  TestServer T(1);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  constexpr int N = 112;
  std::vector<int> Fds(N);
  for (int K = 0; K < N; ++K) {
    Fds[K] = connectTo(T.Sock);
    ASSERT_GE(Fds[K], 0) << "conn " << K;
  }
  Reply R;
  // Open N sessions, one per connection.
  for (int K = 0; K < N; ++K) {
    ASSERT_TRUE(roundTrip(Fds[K],
                          "Ow" + std::to_string(K) + "\nvm\n" + CsvMaxSpec,
                          R));
    ASSERT_TRUE(R.Ok) << R.Body;
  }
  // Pipeline one feed frame on every connection before reading any
  // reply: the single shard sees frames from all 112 connections
  // interleaved in whatever order epoll reports them.
  for (int Round = 0; Round < 3; ++Round) {
    for (int K = 0; K < N; ++K)
      ASSERT_TRUE(sendFrame(Fds[K], "Fw" + std::to_string(K) + "\na," +
                                        std::to_string(1000 * Round + K) +
                                        ",x\n"));
    for (int K = 0; K < N; ++K) {
      ASSERT_TRUE(readReply(Fds[K], R));
      ASSERT_TRUE(R.Ok) << R.Body;
      EXPECT_EQ(R.Name, "w" + std::to_string(K))
          << "reply routed to the wrong connection";
    }
  }
  for (int K = 0; K < N; ++K) {
    ASSERT_TRUE(roundTrip(Fds[K], "Ew" + std::to_string(K), R));
    ASSERT_TRUE(R.Ok) << R.Body;
    EXPECT_EQ(R.Body, std::to_string(2000 + K)) << "session w" << K;
    ::close(Fds[K]);
  }
  EXPECT_NE(T.Srv->statsText().find("frames_dropped=0"), std::string::npos)
      << "no frame may be lost: " << T.Srv->statsText();
}

TEST(ServeTransport, CrossShardSessionForwarding) {
  TestServer T(2);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  // Unix accepts hand off round-robin: the first connection lands on
  // shard 0, the second on shard 1 — so B's frames for A's session must
  // cross shards.
  int A = connectTo(T.Sock);
  ASSERT_GE(A, 0);
  int B = connectTo(T.Sock);
  ASSERT_GE(B, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(A, std::string("Oxs\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(B, "Fxs\na,41,x\n", R));
  ASSERT_TRUE(R.Ok) << "cross-shard feed failed: " << R.Body;
  ASSERT_TRUE(roundTrip(B, "Fxs\na,7,x\n", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(B, "Exs", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  EXPECT_EQ(R.Body, "41");
  std::string Stats = T.Srv->statsText();
  EXPECT_EQ(Stats.find("cross_forwards=0 "), std::string::npos)
      << "expected forwarded frames in: " << Stats;
  ::close(A);
  ::close(B);
}

//===----------------------------------------------------------------------===//
// Graceful drain and idle eviction
//===----------------------------------------------------------------------===//

TEST(ServeTransport, GracefulDrainDeliversBufferedReplies) {
  TestServer T(1);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  int Fd = connectTo(T.Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Og\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  // Pipeline 20 feeds and the finish without reading, then request the
  // drain: every reply must still arrive (the old server's stop path
  // dropped whatever its acceptor had not yet read).
  constexpr int Feeds = 20;
  for (int I = 0; I < Feeds; ++I)
    ASSERT_TRUE(
        sendFrame(Fd, "Fg\na," + std::to_string(50 + I) + ",x\n"));
  ASSERT_TRUE(sendFrame(Fd, "Eg"));
  T.Srv->signalStop();
  std::string Out;
  for (int I = 0; I < Feeds + 1; ++I) {
    ASSERT_TRUE(readReply(Fd, R)) << "reply " << I << " lost in drain";
    ASSERT_TRUE(R.Ok) << R.Body;
    Out += R.Body;
  }
  EXPECT_EQ(Out, std::to_string(50 + Feeds - 1));
  std::string Rest;
  EXPECT_FALSE(recvFrame(Fd, Rest)) << "drained server must close";
  ::close(Fd);
  T.Srv->wait(); // must return promptly now that the drain completed
}

TEST(ServeTransport, IdleSessionsAreReaped) {
  TestServer T(1, /*IdleMs=*/60);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err;
  int Fd = connectTo(T.Sock);
  ASSERT_GE(Fd, 0);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Oidle\nvm\n") + CsvMaxSpec, R));
  ASSERT_TRUE(R.Ok) << R.Body;
  // Touch nothing and poll the public counter until the reaper fires.
  bool Evicted = false;
  for (int I = 0; I < 300 && !Evicted; ++I) {
    Evicted =
        T.Srv->statsText().find("evicted=0 ") == std::string::npos;
    if (!Evicted)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(Evicted) << T.Srv->statsText();
  ASSERT_TRUE(roundTrip(Fd, "Fidle\na,1,x\n", R));
  EXPECT_FALSE(R.Ok) << "evicted session must be gone";
  // The name is free again after eviction.
  ASSERT_TRUE(roundTrip(Fd, std::string("Oidle\nvm\n") + CsvMaxSpec, R));
  EXPECT_TRUE(R.Ok) << R.Body;
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Frame-bytes fuzzer (fuzz label re-runs this; EFC_FUZZ_SEED overrides)
//===----------------------------------------------------------------------===//

TEST(FrameFuzz, RandomWireBytesNeverWedgeTheServer) {
  const uint64_t Seed = efc::testing::fuzzSeed(0x5eedf8a3);
  SplitMix64 Rng(Seed);
  TestServer T(2);
  std::string Err;
  ASSERT_TRUE(T.start(&Err)) << Err << efc::testing::seedNote(Seed);
  for (int Round = 0; Round < 60; ++Round) {
    int Fd = connectTo(T.Sock);
    ASSERT_GE(Fd, 0) << efc::testing::seedNote(Seed);
    unsigned Mode = unsigned(Rng.next() % 3);
    if (Mode == 0) {
      // Raw garbage: random bytes, random length, random cut-off.
      std::string Junk;
      size_t N = 1 + Rng.next() % 64;
      for (size_t I = 0; I < N; ++I)
        Junk.push_back(char(Rng.next() & 0xFF));
      writeExact(Fd, Junk.data(), Junk.size());
    } else if (Mode == 1) {
      // Valid header, random payload (random opcode, random name bytes):
      // must produce error replies, never a crash or a hang.
      std::string Payload;
      size_t N = Rng.next() % 48;
      for (size_t I = 0; I < N; ++I)
        Payload.push_back(char(Rng.next() & 0xFF));
      std::string Wire = wireBytes(Payload);
      writeExact(Fd, Wire.data(), Wire.size());
    } else {
      // Torn valid frame: write a prefix of a real request, then hang up
      // mid-frame.
      std::string Wire =
          wireBytes(std::string("Ofz\nvm\n") + CsvMaxSpec);
      size_t Cut = 1 + Rng.next() % (Wire.size() - 1);
      writeExact(Fd, Wire.data(), Cut);
    }
    ::close(Fd);
  }
  // After the storm, a well-formed client still gets exact answers.
  int Fd = connectTo(T.Sock);
  ASSERT_GE(Fd, 0) << efc::testing::seedNote(Seed);
  Reply R;
  ASSERT_TRUE(roundTrip(Fd, std::string("Osane\nvm\n") + CsvMaxSpec, R))
      << efc::testing::seedNote(Seed);
  ASSERT_TRUE(R.Ok) << R.Body << efc::testing::seedNote(Seed);
  ASSERT_TRUE(roundTrip(Fd, "Fsane\na,77,x\n", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  ASSERT_TRUE(roundTrip(Fd, "Esane", R));
  ASSERT_TRUE(R.Ok) << R.Body;
  EXPECT_EQ(R.Body, "77") << efc::testing::seedNote(Seed);
  ::close(Fd);
}

} // namespace
