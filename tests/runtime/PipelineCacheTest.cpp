//===- tests/runtime/PipelineCacheTest.cpp - Cache layer tests ------------===//
//
// Spec canonicalization round-trips, hit/miss/coalesce counters,
// single-flight builds under contention, LRU eviction, and the on-disk
// native artifact cache (warm restart never invokes the host compiler).
//
//===----------------------------------------------------------------------===//

#include "runtime/PipelineCache.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <thread>

using namespace efc;
using namespace efc::runtime;

namespace {

PipelineSpec csvMaxSpec() {
  PipelineSpec S;
  S.Kind = PipelineSpec::Frontend::Regex;
  S.Pattern = "(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*";
  S.Agg = "max";
  S.Format = "decimal";
  return S;
}

TEST(PipelineSpec, CanonicalParseRoundTrip) {
  PipelineSpec S = csvMaxSpec();
  S.Minimize = true;
  S.Rbbe = false;
  std::string Err;
  auto R = PipelineSpec::parse(S.canonical(), &Err);
  ASSERT_TRUE(R.has_value()) << Err;
  EXPECT_EQ(*R, S);
  EXPECT_EQ(R->hash(), S.hash());
  EXPECT_EQ(R->canonical(), S.canonical());
}

TEST(PipelineSpec, DefaultsRoundTrip) {
  PipelineSpec S;
  S.Pattern = "(?<v>\\d+)";
  auto R = PipelineSpec::parse(S.canonical());
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(*R, S);
}

TEST(PipelineSpec, HashDistinguishesFields) {
  PipelineSpec A = csvMaxSpec();
  PipelineSpec B = A;
  B.Agg = "min";
  PipelineSpec C = A;
  C.Rbbe = false;
  EXPECT_NE(A.hash(), B.hash());
  EXPECT_NE(A.hash(), C.hash());
  EXPECT_NE(A.canonical(), B.canonical());
}

TEST(PipelineSpec, ParseRejectsMalformedInput) {
  std::string Err;
  EXPECT_FALSE(PipelineSpec::parse("frontend=bogus\npattern=x\n", &Err));
  EXPECT_NE(Err.find("frontend"), std::string::npos);
  EXPECT_FALSE(PipelineSpec::parse("pattern=x\n", &Err)); // no frontend
  EXPECT_FALSE(PipelineSpec::parse("frontend=regex\n", &Err)); // no pattern
  EXPECT_FALSE(
      PipelineSpec::parse("frontend=regex\npattern=x\nagg=sum\n", &Err));
  EXPECT_FALSE(
      PipelineSpec::parse("frontend=regex\npattern=x\nformat=json\n", &Err));
  EXPECT_FALSE(PipelineSpec::parse("frontend=regex\npattern=x\nwat=1\n",
                                   &Err)); // unknown key
  EXPECT_FALSE(PipelineSpec::parse("garbage", &Err)); // no '='
}

TEST(PipelineCache, HitMissCounters) {
  PipelineCache Cache(4);
  std::string Err;
  auto A = Cache.get(csvMaxSpec(), false, &Err);
  ASSERT_TRUE(A) << Err;
  auto B = Cache.get(csvMaxSpec(), false, &Err);
  ASSERT_TRUE(B);
  EXPECT_EQ(A.get(), B.get()) << "repeat lookups share one entry";

  auto St = Cache.stats();
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Builds, 1u) << "second lookup must not re-fuse";
  EXPECT_GT(St.BuildSeconds, 0.0);
  EXPECT_EQ(Cache.size(), 1u);
  EXPECT_NE(St.str().find("hits=1"), std::string::npos);
}

TEST(PipelineCache, InvalidSpecIsNegativeCached) {
  PipelineCache Cache(4);
  PipelineSpec Bad = csvMaxSpec();
  Bad.Pattern = "(?<v>[unterminated";
  std::string Err;
  EXPECT_FALSE(Cache.get(Bad, false, &Err));
  EXPECT_FALSE(Err.empty());
  // The failure is cached: a retry answers from the slot, no rebuild.
  // Spec errors are deterministic, so they stay sticky forever and are
  // accounted separately from positive hits.
  EXPECT_FALSE(Cache.get(Bad, false, &Err));
  EXPECT_EQ(Cache.stats().Builds, 0u);
  EXPECT_EQ(Cache.stats().Misses, 1u);
  EXPECT_EQ(Cache.stats().NegativeHits, 1u);
  EXPECT_EQ(Cache.stats().Hits, 0u);
  EXPECT_NE(Cache.stats().str().find("negative_hits=1"), std::string::npos);
}

TEST(PipelineCache, SingleFlightUnderContention) {
  PipelineCache Cache(4);
  constexpr int N = 8;
  std::atomic<int> Ok{0};
  std::vector<std::thread> Ts;
  for (int I = 0; I < N; ++I)
    Ts.emplace_back([&] {
      if (Cache.get(csvMaxSpec()))
        ++Ok;
    });
  for (auto &T : Ts)
    T.join();
  EXPECT_EQ(Ok.load(), N);
  auto St = Cache.stats();
  EXPECT_EQ(St.Builds, 1u) << "N concurrent gets must fuse exactly once";
  EXPECT_EQ(St.Misses, 1u);
  EXPECT_EQ(St.Hits + St.Coalesced, uint64_t(N - 1));
}

TEST(PipelineCache, LruEviction) {
  PipelineCache Cache(2);
  PipelineSpec A = csvMaxSpec();
  PipelineSpec B = A, C = A;
  B.Agg = "min";
  C.Agg = "avg";
  ASSERT_TRUE(Cache.get(A));
  ASSERT_TRUE(Cache.get(B));
  ASSERT_TRUE(Cache.get(A)); // A is now most recent; B is the LRU victim
  ASSERT_TRUE(Cache.get(C));
  EXPECT_EQ(Cache.size(), 2u);
  EXPECT_EQ(Cache.stats().Evictions, 1u);
  // A survived the eviction; B was dropped and rebuilds.
  ASSERT_TRUE(Cache.get(A));
  EXPECT_EQ(Cache.stats().Builds, 3u);
  ASSERT_TRUE(Cache.get(B));
  EXPECT_EQ(Cache.stats().Builds, 4u);
}

TEST(PipelineCache, NativeDiskArtifactCache) {
  std::string Dir = ::testing::TempDir() + "/efc_cache_test";
  ::setenv("EFC_CACHE_DIR", Dir.c_str(), 1);
  EXPECT_EQ(NativeTransducer::cacheDir(), Dir);

  std::string Err;
  PipelineSpec S = csvMaxSpec();
  S.Agg = "avg"; // avoid colliding with other suites' warm artifacts

  PipelineCache Cold(4);
  auto P1 = Cold.get(S, /*WantNative=*/true, &Err);
  if (!P1 && Err.find("native backend unavailable") != std::string::npos)
    GTEST_SKIP() << Err;
  ASSERT_TRUE(P1) << Err;
  auto StCold = Cold.stats();
  // First process-wide build either compiles or reuses an artifact left
  // by an earlier run of this very test binary.
  EXPECT_EQ(StCold.NativeCompiles + StCold.NativeDiskHits, 1u);

  // A fresh cache (fresh process, conceptually) must find the artifact
  // on disk and never invoke the host compiler.
  PipelineCache Warm(4);
  auto P2 = Warm.get(S, true, &Err);
  ASSERT_TRUE(P2) << Err;
  auto StWarm = Warm.stats();
  EXPECT_EQ(StWarm.NativeCompiles, 0u)
      << "warm artifact cache must not invoke the compiler";
  EXPECT_EQ(StWarm.NativeDiskHits, 1u);
  EXPECT_EQ(StWarm.Builds, 1u) << "fusion is in-memory only, so it reruns";

  // In-memory warm path: the same cache serves native repeats without
  // touching the disk again.
  auto P3 = Warm.get(S, true, &Err);
  ASSERT_TRUE(P3);
  EXPECT_EQ(P2.get(), P3.get());
  EXPECT_EQ(Warm.stats().NativeDiskHits, 1u);
  EXPECT_EQ(Warm.stats().Hits, 1u);
}

TEST(PipelineCache, VmEntryUpgradesToNative) {
  std::string Dir = ::testing::TempDir() + "/efc_cache_test";
  ::setenv("EFC_CACHE_DIR", Dir.c_str(), 1);
  PipelineCache Cache(4);
  std::string Err;
  auto P = Cache.get(csvMaxSpec(), false, &Err);
  ASSERT_TRUE(P) << Err;
  EXPECT_EQ(Cache.stats().NativeCompiles + Cache.stats().NativeDiskHits, 0u)
      << "VM-only lookups must not touch the native toolchain";
  auto P2 = Cache.get(csvMaxSpec(), true, &Err);
  if (!P2 && Err.find("native backend unavailable") != std::string::npos)
    GTEST_SKIP() << Err;
  ASSERT_TRUE(P2) << Err;
  EXPECT_EQ(P.get(), P2.get()) << "upgrade happens in place";
  const NativeTransducer *N = P2->native(&Err);
  ASSERT_NE(N, nullptr) << Err;
  EXPECT_TRUE(N->streamingAvailable());
}

/// Environment guard for the native-retry tests: points the artifact
/// cache at a private directory (so a warm .so cannot mask the broken
/// compiler) and restores every variable on scope exit.
class NativeRetryEnv {
public:
  NativeRetryEnv(const char *Sub, const char *RetryMs) {
    Dir = ::testing::TempDir() + Sub;
    // A warm artifact from a previous run would disk-hit before the
    // (broken) compiler is ever invoked — start cold every time.
    std::filesystem::remove_all(Dir);
    ::setenv("EFC_CACHE_DIR", Dir.c_str(), 1);
    ::setenv("EFC_NATIVE_RETRY_MS", RetryMs, 1);
  }
  ~NativeRetryEnv() {
    ::unsetenv("EFC_CXX");
    ::unsetenv("EFC_NATIVE_RETRY_MS");
    ::setenv("EFC_CACHE_DIR",
             (::testing::TempDir() + "/efc_cache_test").c_str(), 1);
  }
  std::string Dir;
};

// The failed-then-fixed scenario: a toolchain outage (every cc invocation
// fails) must not poison the entry forever — once the compiler works
// again, the same entry recovers without a rebuild of the pipeline.
TEST(PipelineCache, TransientNativeFailureRecovers) {
  NativeRetryEnv Env("/efc_retry_recover", /*RetryMs=*/"0");
  ::setenv("EFC_CXX", "false", 1); // "compiler" that always fails

  PipelineCache Cache(4);
  PipelineSpec S = csvMaxSpec();
  S.Agg = "min"; // keep this entry's artifact key test-private
  std::string Err;
  auto P = Cache.get(S, /*WantNative=*/false, &Err);
  ASSERT_TRUE(P) << Err;

  CompiledPipeline::NativeOutcome Outcome;
  NativeCompileInfo Info;
  EXPECT_EQ(P->native(&Err, &Outcome, &Info), nullptr);
  EXPECT_EQ(Outcome, CompiledPipeline::NativeOutcome::Failed);
  EXPECT_TRUE(Info.Transient) << "a failing cc is an environmental error";

  // Still broken: the immediate retry (EFC_NATIVE_RETRY_MS=0) runs the
  // compiler again and fails again.
  EXPECT_EQ(P->native(&Err, &Outcome, &Info), nullptr);
  EXPECT_EQ(Outcome, CompiledPipeline::NativeOutcome::Failed);

  // Toolchain restored: the very same entry must now compile.
  ::unsetenv("EFC_CXX");
  const NativeTransducer *N = P->native(&Err, &Outcome, &Info);
  if (!N && Err.find("no host C++ compiler") != std::string::npos)
    GTEST_SKIP() << Err;
  ASSERT_NE(N, nullptr) << Err;
  EXPECT_EQ(Outcome, CompiledPipeline::NativeOutcome::Compiled);
  EXPECT_FALSE(Info.Transient);
  // And the recovery is cached like any success.
  EXPECT_EQ(P->native(&Err, &Outcome), N);
  EXPECT_EQ(Outcome, CompiledPipeline::NativeOutcome::Ready);
  EXPECT_EQ(Cache.stats().Builds, 1u) << "recovery must not re-fuse";
}

// While the backoff deadline is pending, repeated native() calls answer
// from the cached error without invoking the compiler again.
TEST(PipelineCache, TransientNativeFailureBacksOff) {
  NativeRetryEnv Env("/efc_retry_backoff", /*RetryMs=*/"3600000");
  ::setenv("EFC_CXX", "false", 1);

  PipelineCache Cache(4);
  PipelineSpec S = csvMaxSpec();
  S.Agg = "avg";
  S.Format = "lines"; // test-private artifact key
  std::string Err;
  auto P = Cache.get(S, false, &Err);
  ASSERT_TRUE(P) << Err;

  auto &Failures = metrics::Registry::instance().counter(
      "efc_native_compile_failures_total");
  uint64_t F0 = Failures.value();
  CompiledPipeline::NativeOutcome Outcome;
  EXPECT_EQ(P->native(&Err, &Outcome), nullptr);
  EXPECT_EQ(Failures.value(), F0 + 1);
  std::string FirstErr = Err;
  // An hour-long backoff: these must be served from the cached error.
  EXPECT_EQ(P->native(&Err, &Outcome), nullptr);
  EXPECT_EQ(P->native(&Err, &Outcome), nullptr);
  EXPECT_EQ(Failures.value(), F0 + 1)
      << "no compiler invocation while the backoff is pending";
  EXPECT_EQ(Err, FirstErr);
}

TEST(AssembleStages, MirrorsEfccShape) {
  TermContext Ctx;
  std::string Err;
  auto Stages = assembleStages(csvMaxSpec(), Ctx, &Err);
  ASSERT_TRUE(Stages.has_value()) << Err;
  // decode + extract + agg + format + encode
  EXPECT_EQ(Stages->size(), 5u);

  PipelineSpec NoAgg = csvMaxSpec();
  NoAgg.Agg = "none";
  auto S2 = assembleStages(NoAgg, Ctx, &Err);
  ASSERT_TRUE(S2.has_value());
  EXPECT_EQ(S2->size(), 4u);

  PipelineSpec Bad = csvMaxSpec();
  Bad.Pattern = "(?<v>[oops";
  EXPECT_FALSE(assembleStages(Bad, Ctx, &Err));
  EXPECT_NE(Err.find("regex error"), std::string::npos);
}

} // namespace
