//===- tests/runtime/StreamSessionTest.cpp - Chunk-boundary invariance ----===//
//
// The streaming contract: for ANY split of an input into chunks — fixed
// sizes from 1 to 4096, random partitions, cuts inside multi-byte UTF-8
// sequences — the concatenated session output is byte-identical to the
// one-shot run, on the bytecode VM, the byte-class fast path, and the
// native suspend/resume entry points.  Swept over every Figure 9
// pipeline.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "common/FuzzSeed.h"
#include "data/Datasets.h"
#include "runtime/StreamSession.h"

#include <gtest/gtest.h>

#include <random>

using namespace efc;
using namespace efc::bench;
using namespace efc::runtime;

namespace {

std::string bytesOf(const std::vector<uint64_t> &Raw) {
  std::string S;
  S.reserve(Raw.size());
  for (uint64_t V : Raw)
    S.push_back(char(V));
  return S;
}

/// Streams \p In through \p S at the given cut points and returns the
/// concatenated output, or std::nullopt when the session rejects.
std::optional<std::string> streamAt(StreamSession S, const std::string &In,
                                    const std::vector<size_t> &Cuts) {
  std::string Got;
  size_t Prev = 0;
  for (size_t Cut : Cuts) {
    if (!S.feed(std::string_view(In).substr(Prev, Cut - Prev)))
      return std::nullopt;
    Got += S.takeOutput();
    Prev = Cut;
  }
  if (!S.feed(std::string_view(In).substr(Prev)))
    return std::nullopt;
  if (!S.finish())
    return std::nullopt;
  Got += S.takeOutput();
  return Got;
}

std::vector<size_t> fixedCuts(size_t Len, size_t Chunk) {
  std::vector<size_t> Cuts;
  for (size_t I = Chunk; I < Len; I += Chunk)
    Cuts.push_back(I);
  return Cuts;
}

struct Fig9Case {
  const char *Name;
  BuiltPipeline (*Make)();
  std::string (*Input)();
};

// Small datasets: the VM cursor feeds byte-at-a-time, and the sweep runs
// every pipeline at seven chunk sizes on two backends.
std::string csvIn() { return data::makeCsv(64, 4096, 6, 4, 9999); }
std::string chsiIn() { return data::makeChsiCsv(62, 4096, 3); }
std::string sboIn() { return data::makeSboCsv(61, 4096, 5); }
std::string ccIn() { return data::makeCcCsv(63, 4096); }
std::string b64In() { return data::makeBase64Ints(65, 512, 1u << 28); }
std::string engIn() { return data::makeEnglishText(66, 4096); }

const Fig9Case Cases[] = {
    {"Base64_avg", &makeBase64AvgPipeline, &b64In},
    {"Base64_delta", &makeBase64DeltaPipeline, &b64In},
    {"UTF8_lines", &makeUtf8LinesPipeline, &engIn},
    {"CSV_max", &makeCsvMaxPipeline, &csvIn},
    {"CHSI_deaths", [] { return makeChsiPipeline("deaths"); }, &chsiIn},
    {"SBO_employees", [] { return makeSboPipeline("employees"); }, &sboIn},
    {"CC_id", &makeCcIdPipeline, &ccIn},
};

class StreamChunkInvariance : public ::testing::TestWithParam<Fig9Case> {};

TEST_P(StreamChunkInvariance, FixedAndRandomSplitsMatchOneShot) {
  const Fig9Case &C = GetParam();
  BuiltPipeline P = C.Make();
  std::string In = C.Input();

  auto Want = P.CompiledFused->run(rawOfBytes(In));
  ASSERT_TRUE(Want.has_value()) << C.Name;
  std::string WantBytes = bytesOf(*Want);

  std::optional<StreamSession> Nat;
  if (P.Native)
    Nat = StreamSession::overNative(*P.Native);

  // Acceptance sweep: chunk sizes spanning 1..4096 (1 = worst case,
  // 4096 >= |input| = the one-shot degenerate split).
  for (size_t Chunk : {size_t(1), size_t(2), size_t(3), size_t(7),
                       size_t(64), size_t(1021), size_t(4096)}) {
    auto Cuts = fixedCuts(In.size(), Chunk);
    auto Vm = streamAt(StreamSession::overVm(*P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Vm.has_value()) << C.Name << " chunk=" << Chunk;
    EXPECT_EQ(*Vm, WantBytes) << C.Name << " vm chunk=" << Chunk;
    auto Fast = streamAt(
        StreamSession::overFast(*P.FastPlan, *P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Fast.has_value()) << C.Name << " chunk=" << Chunk;
    EXPECT_EQ(*Fast, WantBytes) << C.Name << " fastpath chunk=" << Chunk;
    if (Nat) {
      auto N = streamAt(StreamSession::overNative(*P.Native).value(), In,
                        Cuts);
      ASSERT_TRUE(N.has_value()) << C.Name << " chunk=" << Chunk;
      EXPECT_EQ(*N, WantBytes) << C.Name << " native chunk=" << Chunk;
    }
  }

  // Random partitions, including empty chunks (repeated cut points).
  uint64_t Seed = efc::testing::fuzzSeed(0xefc0) + In.size();
  std::mt19937_64 Rng(Seed);
  for (int Round = 0; Round < 8; ++Round) {
    std::vector<size_t> Cuts;
    size_t NumCuts = 1 + Rng() % 40;
    for (size_t I = 0; I < NumCuts; ++I)
      Cuts.push_back(Rng() % (In.size() + 1));
    std::sort(Cuts.begin(), Cuts.end());
    auto Vm = streamAt(StreamSession::overVm(*P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Vm.has_value())
        << C.Name << " round=" << Round << " "
        << efc::testing::seedNote(Seed);
    EXPECT_EQ(*Vm, WantBytes) << C.Name << " vm round=" << Round << " "
                              << efc::testing::seedNote(Seed);
    auto Fast = streamAt(
        StreamSession::overFast(*P.FastPlan, *P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Fast.has_value())
        << C.Name << " round=" << Round << " "
        << efc::testing::seedNote(Seed);
    EXPECT_EQ(*Fast, WantBytes)
        << C.Name << " fastpath round=" << Round << " "
        << efc::testing::seedNote(Seed);
    if (Nat) {
      auto N =
          streamAt(StreamSession::overNative(*P.Native).value(), In, Cuts);
      ASSERT_TRUE(N.has_value())
          << C.Name << " round=" << Round << " "
          << efc::testing::seedNote(Seed);
      EXPECT_EQ(*N, WantBytes)
          << C.Name << " native round=" << Round << " "
          << efc::testing::seedNote(Seed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig9, StreamChunkInvariance, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<Fig9Case> &Info) {
      return Info.param.Name;
    });

TEST(StreamSession, MidUtf8SplitsEverywhere) {
  // 2-, 3- and 4-byte sequences; every single split point, so every cut
  // that lands inside a multi-byte encoding is exercised.
  BuiltPipeline P = makeUtf8LinesPipeline();
  std::string In = "h\xc3\xa9llo\n\xe2\x9c\x93 w\xc3\xb6rld\n"
                   "\xf0\x9d\x84\x9e quartet\nlast\n";
  auto Want = P.CompiledFused->run(rawOfBytes(In));
  ASSERT_TRUE(Want.has_value());
  std::string WantBytes = bytesOf(*Want);

  for (size_t Cut = 0; Cut <= In.size(); ++Cut) {
    auto Vm = streamAt(StreamSession::overVm(*P.CompiledFused), In, {Cut});
    ASSERT_TRUE(Vm.has_value()) << "cut=" << Cut;
    EXPECT_EQ(*Vm, WantBytes) << "vm cut=" << Cut;
    auto Fast = streamAt(
        StreamSession::overFast(*P.FastPlan, *P.CompiledFused), In, {Cut});
    ASSERT_TRUE(Fast.has_value()) << "cut=" << Cut;
    EXPECT_EQ(*Fast, WantBytes) << "fastpath cut=" << Cut;
    if (P.Native) {
      auto N = streamAt(StreamSession::overNative(*P.Native).value(), In,
                        {Cut});
      ASSERT_TRUE(N.has_value()) << "cut=" << Cut;
      EXPECT_EQ(*N, WantBytes) << "native cut=" << Cut;
    }
  }
}

TEST(StreamSession, MidRunSplitsEverywhere) {
  // One 4096-'a' line is a single maximal run-kernel span for the fused
  // UTF8-lines pipeline.  Cut the stream once at every position inside
  // the run, on the VM, fast-path and native backends: the span is
  // consumed in two kernel applications that must resume with no state
  // drift, and the concatenation must equal the one-shot output.
  BuiltPipeline P = makeUtf8LinesPipeline();
  std::string In(4096, 'a');
  In += '\n';
  auto Want = P.CompiledFused->run(rawOfBytes(In));
  ASSERT_TRUE(Want.has_value());
  std::string WantBytes = bytesOf(*Want);

  // Kernel engagement: the counters prove this test exercises run
  // acceleration rather than per-element dispatch.
  {
    StreamSession S = StreamSession::overFast(*P.FastPlan, *P.CompiledFused);
    ASSERT_TRUE(S.feed(std::string_view(In)));
    ASSERT_TRUE(S.finish());
    EXPECT_EQ(S.takeOutput(), WantBytes);
    EXPECT_GT(S.fastRuns(), 0u);
    EXPECT_GE(S.fastRunElements(), 4096u);
  }

  for (size_t Cut = 0; Cut <= In.size(); Cut += 7) {
    auto Vm = streamAt(StreamSession::overVm(*P.CompiledFused), In, {Cut});
    ASSERT_TRUE(Vm.has_value()) << "cut=" << Cut;
    EXPECT_EQ(*Vm, WantBytes) << "vm cut=" << Cut;
    auto Fast = streamAt(
        StreamSession::overFast(*P.FastPlan, *P.CompiledFused), In, {Cut});
    ASSERT_TRUE(Fast.has_value()) << "cut=" << Cut;
    EXPECT_EQ(*Fast, WantBytes) << "fastpath cut=" << Cut;
    if (P.Native) {
      auto N = streamAt(StreamSession::overNative(*P.Native).value(), In,
                        {Cut});
      ASSERT_TRUE(N.has_value()) << "cut=" << Cut;
      EXPECT_EQ(*N, WantBytes) << "native cut=" << Cut;
    }
  }
}

TEST(StreamSession, CopyRunsFedOneByteAtATime) {
  // Rep+HtmlEncode drives copy/const-append kernels.  Long safe runs
  // around the escapes, streamed in 1-byte chunks (every feed() boundary
  // lands inside some span) and in 3-byte chunks, must match one-shot on
  // all backends.
  BuiltPipeline P = makeHtmlEncodePipeline();
  std::string In = std::string(2048, 'x') + "<&>\"" + std::string(2048, 'y');
  auto Want = P.CompiledFused->run(rawOfBytes(In));
  ASSERT_TRUE(Want.has_value());
  std::string WantBytes = bytesOf(*Want);

  for (size_t Chunk : {size_t(1), size_t(3)}) {
    auto Cuts = fixedCuts(In.size(), Chunk);
    auto Vm = streamAt(StreamSession::overVm(*P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Vm.has_value()) << "chunk=" << Chunk;
    EXPECT_EQ(*Vm, WantBytes) << "vm chunk=" << Chunk;
    auto Fast = streamAt(
        StreamSession::overFast(*P.FastPlan, *P.CompiledFused), In, Cuts);
    ASSERT_TRUE(Fast.has_value()) << "chunk=" << Chunk;
    EXPECT_EQ(*Fast, WantBytes) << "fastpath chunk=" << Chunk;
    if (P.Native) {
      auto N =
          streamAt(StreamSession::overNative(*P.Native).value(), In, Cuts);
      ASSERT_TRUE(N.has_value()) << "chunk=" << Chunk;
      EXPECT_EQ(*N, WantBytes) << "native chunk=" << Chunk;
    }
  }
}

TEST(StreamSession, EmptyInputMatchesOneShot) {
  BuiltPipeline P = makeUtf8LinesPipeline();
  auto Want = P.CompiledFused->run({});
  ASSERT_TRUE(Want.has_value());
  auto Got = streamAt(StreamSession::overVm(*P.CompiledFused), "", {});
  ASSERT_TRUE(Got.has_value());
  EXPECT_EQ(*Got, bytesOf(*Want));
}

TEST(StreamSession, RejectionIsSticky) {
  // utf8 decode rejects 0xFF; once rejected, every later call fails.
  BuiltPipeline P = makeUtf8LinesPipeline();
  StreamSession S = StreamSession::overVm(*P.CompiledFused);
  ASSERT_TRUE(S.feed(std::string_view("ok\n")));
  EXPECT_FALSE(S.feed(std::string_view("\xff")));
  EXPECT_TRUE(S.rejected());
  EXPECT_FALSE(S.feed(std::string_view("more")));
  EXPECT_FALSE(S.finish());
}

TEST(StreamSession, FastPathRejectionIsSticky) {
  BuiltPipeline P = makeUtf8LinesPipeline();
  StreamSession S = StreamSession::overFast(*P.FastPlan, *P.CompiledFused);
  ASSERT_TRUE(S.feed(std::string_view("ok\n")));
  EXPECT_FALSE(S.feed(std::string_view("\xff")));
  EXPECT_TRUE(S.rejected());
  EXPECT_FALSE(S.feed(std::string_view("more")));
  EXPECT_FALSE(S.finish());
}

TEST(StreamSession, OpenFastBackendUsesCachedPlan) {
  PipelineCache Cache(2);
  PipelineSpec Spec;
  Spec.Kind = PipelineSpec::Frontend::Regex;
  Spec.Pattern = "(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*";
  Spec.Agg = "max";
  Spec.Format = "decimal";
  std::string Err;
  auto P = Cache.get(Spec, false, &Err);
  ASSERT_TRUE(P) << Err;
  ASSERT_TRUE(P->Fast != nullptr) << "cache entries carry a fast-path plan";
  auto S = StreamSession::open(P, StreamSession::Backend::Fast, &Err);
  ASSERT_TRUE(S.has_value()) << Err;
  ASSERT_TRUE(S->feed(std::string_view("a,7,x\nb,31,y\n")));
  ASSERT_TRUE(S->finish());
  EXPECT_EQ(S->takeOutput(), "31");
}

TEST(StreamSession, FinishIsIdempotentAndFinal) {
  BuiltPipeline P = makeUtf8LinesPipeline();
  StreamSession S = StreamSession::overVm(*P.CompiledFused);
  ASSERT_TRUE(S.feed(std::string_view("a\nb\n")));
  ASSERT_TRUE(S.finish());
  std::string Out = S.takeOutput();
  EXPECT_EQ(Out, "2");
  EXPECT_TRUE(S.finish()) << "finish is idempotent";
  EXPECT_EQ(S.takeOutput(), "") << "no duplicate finalizer output";
  EXPECT_TRUE(S.finished());
  EXPECT_EQ(S.bytesIn(), 4u);
  EXPECT_EQ(S.bytesOut(), 1u);
}

TEST(StreamSession, OpenOverCacheEntrySharesOwnership) {
  PipelineCache Cache(2);
  PipelineSpec Spec;
  Spec.Kind = PipelineSpec::Frontend::Regex;
  Spec.Pattern = "(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*";
  Spec.Agg = "max";
  Spec.Format = "decimal";
  std::string Err;
  auto P = Cache.get(Spec, false, &Err);
  ASSERT_TRUE(P) << Err;
  auto S = StreamSession::open(P, StreamSession::Backend::Vm, &Err);
  ASSERT_TRUE(S.has_value()) << Err;
  ASSERT_TRUE(S->feed(std::string_view("a,7,x\nb,31,y\n")));
  ASSERT_TRUE(S->finish());
  EXPECT_EQ(S->takeOutput(), "31");
}

} // namespace
