//===- tests/common/Oracle.cpp - Differential equivalence oracle ----------===//

#include "common/Oracle.h"

#include "bst/Interp.h"
#include "bst/Transform.h"
#include "pipeline/PassManager.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace efc;
using namespace efc::testing;

//===----------------------------------------------------------------------===//
// Rendering and backend-mask helpers
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint64_t> rawOf(std::span<const Value> Vs) {
  std::vector<uint64_t> Out;
  Out.reserve(Vs.size());
  for (const Value &V : Vs)
    Out.push_back(V.bits());
  return Out;
}

std::string renderRaw(const std::optional<std::vector<uint64_t>> &O) {
  if (!O)
    return "reject";
  std::string S = "[";
  for (size_t I = 0; I < O->size(); ++I) {
    if (I)
      S += " ";
    S += std::to_string((*O)[I]);
  }
  return S + "]";
}

struct BackendName {
  const char *Name;
  unsigned Bit;
};

constexpr BackendName Names[] = {
    {"vm", BK_Vm},           {"fused", BK_Fused},
    {"fusedvm", BK_FusedVm}, {"rbbe", BK_Rbbe},
    {"rbbevm", BK_RbbeVm},   {"native", BK_Native},
    {"fastpath", BK_FastPath}, {"rbbefast", BK_RbbeFast},
    {"fastskip", BK_FastSkip}, {"parallel", BK_Parallel},
};

} // namespace

std::string efc::testing::renderValues(std::span<const Value> Vs) {
  return renderRaw(rawOf(Vs));
}

unsigned efc::testing::parseBackends(const std::string &Spec,
                                     std::string *Err) {
  unsigned Mask = 0;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    std::string Tok = Spec.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Spec.size() + 1 : Comma + 1;
    if (Tok.empty())
      continue;
    if (Tok == "all") {
      Mask |= BK_All;
      continue;
    }
    if (Tok == "default") {
      Mask |= BK_Default;
      continue;
    }
    if (Tok == "interp")
      continue; // the reference path is always on
    bool Found = false;
    for (const BackendName &N : Names)
      if (Tok == N.Name) {
        Mask |= N.Bit;
        Found = true;
        break;
      }
    if (!Found) {
      if (Err)
        *Err = "unknown backend '" + Tok + "'";
      return 0;
    }
  }
  if (Mask == 0 && Err)
    *Err = "empty backend list";
  return Mask;
}

std::string efc::testing::backendNames(unsigned Mask) {
  std::string S;
  for (const BackendName &N : Names)
    if (Mask & N.Bit) {
      if (!S.empty())
        S += ",";
      S += N.Name;
    }
  return S;
}

std::string efc::testing::pipelineSummary(const std::vector<Bst> &Stages,
                                          std::span<const Value> Input) {
  std::string States;
  unsigned Branches = 0;
  for (const Bst &St : Stages) {
    if (!States.empty())
      States += "+";
    States += std::to_string(St.numStates());
    Branches += St.countBranches();
  }
  return std::to_string(Stages.size()) + " stage" +
         (Stages.size() == 1 ? "" : "s") + ", " + States + " states, " +
         std::to_string(Branches) + " branches, input len " +
         std::to_string(Input.size());
}

//===----------------------------------------------------------------------===//
// Oracle
//===----------------------------------------------------------------------===//

Oracle::Oracle(std::vector<Bst> StagesIn, const OracleOptions &Opts)
    : Stages(std::move(StagesIn)), Backends(Opts.Backends) {
  assert(!Stages.empty());
  for (size_t I = 0; I + 1 < Stages.size(); ++I) {
    assert(Stages[I].outputType() == Stages[I + 1].inputType() &&
           "pipeline stages must chain by type");
    (void)I;
  }

  if (Backends & BK_Vm)
    for (const Bst &St : Stages)
      StageVms.push_back(CompiledTransducer::compile(St));

  constexpr unsigned NeedFused = BK_Fused | BK_FusedVm | BK_Rbbe |
                                 BK_RbbeVm | BK_Native | BK_FastPath |
                                 BK_RbbeFast | BK_FastSkip | BK_Parallel;
  if (!(Backends & NeedFused))
    return;

  // The same pass pipeline the serving cache runs, in raw mode: no
  // IrChain (this oracle's TermContext is caller-owned, so artifacts
  // must not outlive it and caching is off) and AllowNonScalar (random
  // property pipelines may have non-scalar element types — the VM
  // artifact then stays null and check() reports it per backend, as the
  // hand-rolled chain did).
  pipeline::PipelineOptions PO;
  PO.Fusion = Opts.Fusion;
  PO.Rbbe = Opts.Rbbe;
  PO.AllowNonScalar = true;

  auto runPasses = [&](pipeline::PassContext &PC,
                       std::vector<std::string> Passes) {
    std::string PErr;
    if (!pipeline::PassManager(std::move(Passes)).run(PC, PO, &PErr)) {
      fprintf(stderr, "oracle: pass pipeline failed: %s\n", PErr.c_str());
      abort();
    }
  };

  pipeline::PassContext PC;
  for (const Bst &St : Stages)
    PC.Stages.push_back(&St);
  std::vector<std::string> Passes{"fuse"};
  if (Backends & (BK_FusedVm | BK_FastPath | BK_FastSkip | BK_Parallel)) {
    Passes.push_back("vm_compile");
    if (Backends & (BK_FastPath | BK_FastSkip | BK_Parallel))
      Passes.push_back("fastpath_plan");
    if (Backends & BK_Parallel)
      Passes.push_back("parallel_plan");
  }
  runPasses(PC, std::move(Passes));
  Fused = PC.Ir;
  FusedVm = PC.Vm;
  FusedFast = PC.Fast;
  FusedPar = PC.Par;

  if (Backends & (BK_Rbbe | BK_RbbeVm | BK_RbbeFast)) {
    // Branch the context: RBBE (and its VM/fast-path artifacts) derive
    // from the same fused IR without rebuilding it.
    pipeline::PassContext RC = PC;
    std::vector<std::string> RPasses{"rbbe"};
    if (Backends & (BK_RbbeVm | BK_RbbeFast))
      RPasses.push_back("vm_compile");
    if (Backends & BK_RbbeFast)
      RPasses.push_back("fastpath_plan");
    runPasses(RC, std::move(RPasses));
    Rbbe = RC.Ir;
    RbbeVm = RC.Vm;
    RbbeFast = RC.Fast;
  }
  if (Backends & BK_Native) {
    static unsigned Counter = 0;
    Native = NativeTransducer::compile(
        *Fused, "oracle" + std::to_string(Counter++), &NativeErr);
  }
}

std::optional<Disagreement>
Oracle::check(std::span<const Value> Input) const {
  // The ground truth: composed reference interpretation, ⟦Bn⟧∘...∘⟦B1⟧.
  std::optional<std::vector<Value>> Ref(
      std::in_place, std::vector<Value>(Input.begin(), Input.end()));
  for (const Bst &St : Stages) {
    Ref = runBst(St, *Ref);
    if (!Ref)
      break;
  }
  std::optional<std::vector<uint64_t>> RefRaw;
  if (Ref)
    RefRaw = rawOf(*Ref);

  auto diverges =
      [&](const char *Name,
          const std::optional<std::vector<uint64_t>> &Got)
      -> std::optional<Disagreement> {
    if (RefRaw == Got)
      return std::nullopt;
    return Disagreement{Name, renderRaw(RefRaw), renderRaw(Got)};
  };

  std::vector<uint64_t> Raw = rawOf(Input);

  if (Backends & BK_Vm) {
    std::optional<std::vector<uint64_t>> Cur(Raw);
    for (const auto &V : StageVms) {
      if (!V)
        return Disagreement{"vm", renderRaw(RefRaw),
                            "stage rejected by the VM compiler"};
      Cur = V->run(*Cur);
      if (!Cur)
        break;
    }
    if (auto D = diverges("vm", Cur))
      return D;
  }

  if (Backends & BK_Fused) {
    auto Out = runBst(*Fused, Input);
    std::optional<std::vector<uint64_t>> Got;
    if (Out)
      Got = rawOf(*Out);
    if (auto D = diverges("fused", Got))
      return D;
  }

  if (Backends & BK_FusedVm) {
    if (!FusedVm)
      return Disagreement{"fusedvm", renderRaw(RefRaw),
                          "fused stage rejected by the VM compiler"};
    if (auto D = diverges("fusedvm", FusedVm->run(Raw)))
      return D;
  }

  if (Backends & BK_Rbbe) {
    auto Out = runBst(*Rbbe, Input);
    std::optional<std::vector<uint64_t>> Got;
    if (Out)
      Got = rawOf(*Out);
    if (auto D = diverges("rbbe", Got))
      return D;
  }

  if (Backends & BK_RbbeVm) {
    if (!RbbeVm)
      return Disagreement{"rbbevm", renderRaw(RefRaw),
                          "RBBE'd stage rejected by the VM compiler"};
    if (auto D = diverges("rbbevm", RbbeVm->run(Raw)))
      return D;
  }

  if (Backends & BK_FastPath) {
    if (!FusedVm)
      return Disagreement{"fastpath", renderRaw(RefRaw),
                          "fused stage rejected by the VM compiler"};
    if (auto D = diverges("fastpath", runFastPath(*FusedFast, *FusedVm, Raw)))
      return D;
  }

  if (Backends & BK_RbbeFast) {
    if (!RbbeVm)
      return Disagreement{"rbbefast", renderRaw(RefRaw),
                          "RBBE'd stage rejected by the VM compiler"};
    if (auto D = diverges("rbbefast", runFastPath(*RbbeFast, *RbbeVm, Raw)))
      return D;
  }

  if (Backends & BK_FastSkip) {
    if (!FusedVm)
      return Disagreement{"fastskip", renderRaw(RefRaw),
                          "fused stage rejected by the VM compiler"};
    // Tiny coprime chunk sizes guarantee feed() boundaries land inside
    // any run-kernel span, so this leg proves runs resume across chunks.
    for (size_t Chunk : {size_t(1), size_t(3), size_t(7)}) {
      FastPathCursor Cur(*FusedFast, *FusedVm);
      std::vector<uint64_t> Buf;
      bool Ok = true;
      for (size_t I = 0; I < Raw.size() && Ok; I += Chunk)
        Ok = Cur.feed(std::span<const uint64_t>(
                          Raw.data() + I, std::min(Chunk, Raw.size() - I)),
                      Buf);
      if (Ok)
        Ok = Cur.finish(Buf);
      std::optional<std::vector<uint64_t>> Got;
      if (Ok)
        Got = std::move(Buf);
      if (auto D = diverges("fastskip", Got))
        return D;
    }
  }

  if (Backends & BK_Parallel) {
    if (!FusedVm)
      return Disagreement{"parallel", renderRaw(RefRaw),
                          "fused stage rejected by the VM compiler"};
    // Adversarially tiny knobs: even short oracle inputs get split into
    // several chunks, so planning, speculation, lane merging and effect
    // replay all run.  Ineligible pipelines stitch sequentially inside
    // parallelFeed — still a full differential observation.
    parallel::ParallelOptions PO;
    PO.Threads = 3;
    PO.MinChunkBytes = 2;
    PO.SyncWindow = 8;
    PO.MaxLanes = 4;
    PO.ConvergeBudget = 64;
    if (auto D = diverges("parallel", parallel::runParallel(
                                          *FusedPar, *FusedFast, *FusedVm,
                                          Raw, PO)))
      return D;
  }

  if ((Backends & BK_Native) && Native)
    if (auto D = diverges("native", Native->run(Raw)))
      return D;

  return std::nullopt;
}

std::optional<Disagreement>
efc::testing::checkPipeline(std::vector<Bst> Stages,
                            std::span<const Value> Input, unsigned Backends) {
  return Oracle(std::move(Stages), Backends).check(Input);
}

//===----------------------------------------------------------------------===//
// Shrinking
//===----------------------------------------------------------------------===//

namespace {

/// Every node of a rule tree, pre-order.
void collectNodes(const RulePtr &R, std::vector<const Rule *> &Out) {
  Out.push_back(R.get());
  if (R->isIte()) {
    collectNodes(R->thenRule(), Out);
    collectNodes(R->elseRule(), Out);
  }
}

/// Rebuilds \p R with every occurrence of \p Target replaced by \p Repl.
RulePtr rebuildWith(const RulePtr &R, const Rule *Target,
                    const RulePtr &Repl) {
  if (R.get() == Target)
    return Repl;
  if (!R->isIte())
    return R;
  RulePtr T = rebuildWith(R->thenRule(), Target, Repl);
  RulePtr E = rebuildWith(R->elseRule(), Target, Repl);
  if (T == R->thenRule() && E == R->elseRule())
    return R;
  return Rule::ite(R->cond(), T, E);
}

/// Simplification candidates for one rule node, smallest-change first.
std::vector<RulePtr> nodeCandidates(const Rule *N) {
  std::vector<RulePtr> Cands;
  if (N->isIte()) {
    Cands.push_back(N->thenRule());
    Cands.push_back(N->elseRule());
  } else if (N->isBase()) {
    if (!N->outputs().empty()) {
      std::vector<TermRef> Outs(N->outputs().begin(),
                                N->outputs().end() - 1);
      Cands.push_back(Rule::base(std::move(Outs), N->target(), N->update()));
    }
    Cands.push_back(Rule::undef());
  }
  return Cands;
}

struct ShrinkState {
  const FailurePred &StillFails;
  std::vector<Bst> Stages;
  std::vector<Value> Input;
  Disagreement Failure;
  unsigned Attempts = 0;
  unsigned Accepted = 0;
  unsigned MaxAttempts;

  bool budgetLeft() const { return Attempts < MaxAttempts; }

  /// Re-checks a candidate; adopts it when it still fails.
  bool tryCandidate(std::vector<Bst> CandStages,
                    std::vector<Value> CandInput) {
    if (!budgetLeft())
      return false;
    ++Attempts;
    auto D = StillFails(CandStages, CandInput);
    if (!D)
      return false;
    Stages = std::move(CandStages);
    Input = std::move(CandInput);
    Failure = std::move(*D);
    ++Accepted;
    return true;
  }

  bool dropStages() {
    bool Any = false;
    for (size_t I = 0; I < Stages.size() && Stages.size() > 1;) {
      // The shortened chain must still type-check end to end, and the
      // original input must still fit the first stage.
      const Type *Prev =
          I == 0 ? Stages[0].inputType() : Stages[I - 1].outputType();
      bool Chains = I + 1 < Stages.size() ? Prev == Stages[I + 1].inputType()
                                          : true;
      if (!Chains) {
        ++I;
        continue;
      }
      std::vector<Bst> Cand;
      for (size_t J = 0; J < Stages.size(); ++J)
        if (J != I)
          Cand.push_back(Stages[J]);
      if (tryCandidate(std::move(Cand), Input))
        Any = true; // same index now names the next stage
      else
        ++I;
    }
    return Any;
  }

  bool truncateInput() {
    bool Any = false;
    // ddmin-style: remove chunks of decreasing size.
    for (size_t Chunk = std::max<size_t>(Input.size() / 2, 1);
         Chunk >= 1 && !Input.empty(); Chunk /= 2) {
      for (size_t Start = 0; Start < Input.size();) {
        std::vector<Value> Cand;
        for (size_t I = 0; I < Input.size(); ++I)
          if (I < Start || I >= Start + Chunk)
            Cand.push_back(Input[I]);
        if (Cand.size() != Input.size() && tryCandidate(Stages, std::move(Cand)))
          Any = true; // retry same window against the shorter input
        else
          Start += Chunk;
      }
      if (Chunk == 1)
        break;
    }
    return Any;
  }

  bool dropStates() {
    bool Any = false;
    for (size_t SI = 0; SI < Stages.size(); ++SI) {
      for (unsigned Q = 0; Q < Stages[SI].numStates();) {
        const Bst &St = Stages[SI];
        if (St.numStates() <= 1 || Q == St.initialState()) {
          ++Q;
          continue;
        }
        std::vector<bool> Keep(St.numStates(), true);
        Keep[Q] = false;
        std::vector<Bst> Cand = Stages;
        Cand[SI] = restrictStates(St, Keep);
        if (tryCandidate(std::move(Cand), Input))
          Any = true; // states renumbered; rescan from the same index
        else
          ++Q;
      }
    }
    return Any;
  }

  bool pruneRules() {
    bool Any = false;
    for (size_t SI = 0; SI < Stages.size(); ++SI) {
      for (unsigned Q = 0; Q < Stages[SI].numStates(); ++Q) {
        for (bool Finalizer : {false, true}) {
          bool Progress = true;
          while (Progress && budgetLeft()) {
            Progress = false;
            const RulePtr &R = Finalizer ? Stages[SI].finalizer(Q)
                                         : Stages[SI].delta(Q);
            std::vector<const Rule *> Nodes;
            collectNodes(R, Nodes);
            for (const Rule *N : Nodes) {
              for (const RulePtr &Repl : nodeCandidates(N)) {
                RulePtr NewRule = rebuildWith(R, N, Repl);
                if (Rule::equal(NewRule, R))
                  continue;
                std::vector<Bst> Cand = Stages;
                if (Finalizer)
                  Cand[SI].setFinalizer(Q, NewRule);
                else
                  Cand[SI].setDelta(Q, NewRule);
                if (tryCandidate(std::move(Cand), Input)) {
                  Any = Progress = true;
                  break; // the tree changed; re-collect nodes
                }
              }
              if (Progress)
                break;
            }
          }
        }
      }
    }
    return Any;
  }
};

} // namespace

ShrinkResult efc::testing::shrinkWith(const FailurePred &StillFails,
                                      std::vector<Bst> Stages,
                                      std::vector<Value> Input,
                                      unsigned MaxAttempts) {
  auto Seed = StillFails(Stages, Input);
  if (!Seed) // nothing to shrink: the pair does not fail
    return ShrinkResult{std::move(Stages), std::move(Input), {}, 0, 0};
  ShrinkState S{StillFails,  std::move(Stages), std::move(Input),
                *Seed,       0,                 0,
                MaxAttempts};
  bool Changed = true;
  while (Changed && S.budgetLeft()) {
    Changed = false;
    Changed |= S.dropStages();
    Changed |= S.truncateInput();
    Changed |= S.dropStates();
    Changed |= S.pruneRules();
  }
  return ShrinkResult{std::move(S.Stages), std::move(S.Input),
                      std::move(S.Failure), S.Attempts, S.Accepted};
}

ShrinkResult efc::testing::shrink(std::vector<Bst> Stages,
                                  std::vector<Value> Input, unsigned Backends,
                                  unsigned MaxAttempts) {
  FailurePred Pred = [Backends](const std::vector<Bst> &S,
                                std::span<const Value> In) {
    return checkPipeline(S, In, Backends);
  };
  return shrinkWith(Pred, std::move(Stages), std::move(Input), MaxAttempts);
}
