//===- tests/common/RandomBst.h - Random transducer generator --*- C++ -*-===//
///
/// \file
/// Shared generator of random well-formed BSTs, used by the fusion and
/// RBBE property suites and by the differential fuzzing oracle
/// (tests/common/Oracle.h, tools/efc-fuzz).  The default configuration
/// reproduces the original bv4 / scalar-register generator; GenOptions
/// widens the space to bv8/bv16 elements, register tuples, multi-stage
/// pipelines and adversarial inputs.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TESTS_COMMON_RANDOMBST_H
#define EFC_TESTS_COMMON_RANDOMBST_H

#include "bst/Bst.h"
#include "support/Stopwatch.h"

namespace efc::testing {

/// Knobs for random transducer generation.  Defaults reproduce the
/// historical generator (bv4 elements, scalar bv4 register).
struct GenOptions {
  /// Bit width of input and output elements (4, 8 or 16).
  unsigned ElemWidth = 4;
  /// Maximum register tuple arity; 0 or 1 means a scalar register, N >= 2
  /// allows a tuple of up to N scalar fields (the exact arity is drawn
  /// per transducer).
  unsigned MaxRegTupleArity = 1;
  /// Maximum Ite depth of transition rules.
  int RuleDepth = 2;
  /// Upper bound on emitted terms per Base leaf.
  unsigned MaxOutputsPerLeaf = 2;
};

class RandomBstGen {
public:
  RandomBstGen(TermContext &Ctx, SplitMix64 &Rng) : Ctx(Ctx), Rng(Rng) {}

  Bst make(unsigned NumStates) { return make(NumStates, GenOptions()); }

  Bst make(unsigned NumStates, const GenOptions &O) {
    const Type *Elem = Ctx.bv(O.ElemWidth);
    unsigned Arity =
        O.MaxRegTupleArity >= 2 ? unsigned(Rng.below(O.MaxRegTupleArity + 1))
                                : 0;
    const Type *RegTy = Elem;
    Value InitReg = Value::bv(O.ElemWidth, Rng.below(elemCard(O)));
    if (Arity >= 2) {
      std::vector<const Type *> Tys(Arity, Elem);
      RegTy = Ctx.tupleTy(std::move(Tys));
      std::vector<Value> Fields;
      for (unsigned I = 0; I < Arity; ++I)
        Fields.push_back(Value::bv(O.ElemWidth, Rng.below(elemCard(O))));
      InitReg = Value::tuple(std::move(Fields));
    }
    Bst A(Ctx, Elem, Elem, RegTy, NumStates, unsigned(Rng.below(NumStates)),
          std::move(InitReg));
    for (unsigned Q = 0; Q < NumStates; ++Q) {
      A.setDelta(Q, rule(A, O, Arity, NumStates, O.RuleDepth,
                         /*Finalizer=*/false));
      if (Rng.below(2))
        A.setFinalizer(Q, rule(A, O, Arity, NumStates, 1, /*Finalizer=*/true));
    }
    return A;
  }

  /// A chain of stages over a common element type, so that composition —
  /// and hence fuseChain — is well typed.
  std::vector<Bst> makePipeline(unsigned NumStages, unsigned MaxStatesPerStage,
                                const GenOptions &O) {
    std::vector<Bst> Stages;
    Stages.reserve(NumStages);
    for (unsigned I = 0; I < NumStages; ++I)
      Stages.push_back(make(1 + unsigned(Rng.below(MaxStatesPerStage)), O));
    return Stages;
  }

  std::vector<Value> randomInput(size_t MaxLen) {
    return randomInput(MaxLen, 4);
  }

  std::vector<Value> randomInput(size_t MaxLen, unsigned Width) {
    std::vector<Value> In;
    size_t N = Rng.below(MaxLen + 1);
    for (size_t I = 0; I < N; ++I)
      In.push_back(Value::bv(Width, Rng.below(uint64_t(1) << Width)));
    return In;
  }

  /// Number of deterministic adversarial input shapes.
  static constexpr unsigned NumAdversarialKinds = 6;

  /// Adversarial inputs: 0 = empty, 1 = max-length run of one boundary
  /// constant, 2 = the boundary constants (0, 1, mid, max-1, max),
  /// 3 = alternating extremes (0, max, 0, max, ...), 4 = homogeneous run
  /// ending in one different byte (a run kernel's escape), 5 = run /
  /// escape / run sandwich (a span split by a single non-loop byte).
  std::vector<Value> adversarialInput(unsigned Kind, size_t MaxLen,
                                      unsigned Width) {
    uint64_t Max = Value::maskOf(Width);
    std::vector<Value> In;
    switch (Kind % NumAdversarialKinds) {
    case 0:
      break;
    case 1: {
      uint64_t C = boundaryConstant(Width);
      for (size_t I = 0; I < MaxLen; ++I)
        In.push_back(Value::bv(Width, C));
      break;
    }
    case 2:
      for (uint64_t C : {uint64_t(0), uint64_t(1), Max / 2, Max - 1, Max})
        if (In.size() < MaxLen)
          In.push_back(Value::bv(Width, C));
      break;
    case 3:
      for (size_t I = 0; I < MaxLen; ++I)
        In.push_back(Value::bv(Width, I % 2 ? Max : 0));
      break;
    case 4: {
      // The run-kernel termination case: a long homogeneous span whose
      // last element differs, so vectorized scans must stop exactly there.
      uint64_t C = boundaryConstant(Width);
      for (size_t I = 0; I + 1 < MaxLen; ++I)
        In.push_back(Value::bv(Width, C));
      if (MaxLen)
        In.push_back(Value::bv(Width, (C + 1) & Max));
      break;
    }
    default: {
      // Run / escape / run: one interior non-member byte splits the span,
      // so the driver must re-enter the run after per-element dispatch.
      uint64_t C = boundaryConstant(Width);
      for (size_t I = 0; I < MaxLen; ++I)
        In.push_back(Value::bv(Width, I == MaxLen / 2 ? (C + 1) & Max : C));
      break;
    }
    }
    return In;
  }

private:
  TermContext &Ctx;
  SplitMix64 &Rng;

  static uint64_t elemCard(const GenOptions &O) {
    return uint64_t(1) << O.ElemWidth;
  }

  uint64_t boundaryConstant(unsigned Width) {
    uint64_t Max = Value::maskOf(Width);
    switch (Rng.below(4)) {
    case 0:
      return 0;
    case 1:
      return Max;
    case 2:
      return Max / 2;
    default:
      return 1;
    }
  }

  /// A scalar read of the register: the register itself when scalar, one
  /// random field when it is a tuple.
  TermRef regLeaf(const Bst &A, unsigned Arity) {
    if (Arity < 2)
      return A.regVar();
    return Ctx.mkTupleGet(A.regVar(), unsigned(Rng.below(Arity)));
  }

  TermRef expr(const Bst &A, const GenOptions &O, unsigned Arity,
               bool Finalizer, int Depth) {
    TermRef R = regLeaf(A, Arity);
    TermRef X = Finalizer ? R : A.inputVar();
    if (Depth == 0) {
      switch (Rng.below(3)) {
      case 0:
        return X;
      case 1:
        return R;
      default:
        return Ctx.bvConst(O.ElemWidth, Rng.below(elemCard(O)));
      }
    }
    TermRef L = expr(A, O, Arity, Finalizer, Depth - 1);
    TermRef Rt = expr(A, O, Arity, Finalizer, Depth - 1);
    switch (Rng.below(4)) {
    case 0:
      return Ctx.mkAdd(L, Rt);
    case 1:
      return Ctx.mkBvXor(L, Rt);
    case 2:
      return Ctx.mkSub(L, Rt);
    default:
      return Ctx.mkBvAnd(L, Rt);
    }
  }

  /// The register-update term of a Base leaf: ρ-typed, so a tuple build
  /// when the register is a tuple.
  TermRef update(const Bst &A, const GenOptions &O, unsigned Arity,
                 bool Finalizer) {
    if (Arity < 2)
      return expr(A, O, Arity, Finalizer, 1);
    std::vector<TermRef> Fields;
    for (unsigned I = 0; I < Arity; ++I)
      Fields.push_back(expr(A, O, Arity, Finalizer, 1));
    return Ctx.mkTuple(std::move(Fields));
  }

  RulePtr rule(const Bst &A, const GenOptions &O, unsigned Arity,
               unsigned NumStates, int Depth, bool Finalizer) {
    if (Depth == 0 || Rng.below(3) == 0) {
      if (Rng.below(6) == 0)
        return Rule::undef();
      std::vector<TermRef> Outs;
      size_t N = Rng.below(O.MaxOutputsPerLeaf + 1);
      for (size_t I = 0; I < N; ++I)
        Outs.push_back(expr(A, O, Arity, Finalizer, 1));
      return Rule::base(std::move(Outs), unsigned(Rng.below(NumStates)),
                        update(A, O, Arity, Finalizer));
    }
    // Guards test the input element or (state-carried) register contents;
    // register guards are what make RBBE's job nontrivial.  Every
    // comparison kind appears so backend bugs in any one opcode are
    // observable.
    TermRef Subject = Finalizer || Rng.below(3) == 0 ? regLeaf(A, Arity)
                                                     : A.inputVar();
    TermRef C = Ctx.bvConst(O.ElemWidth, Rng.below(elemCard(O)));
    TermRef Guard;
    switch (Rng.below(6)) {
    case 0:
      Guard = Ctx.mkEq(Subject, C);
      break;
    case 1:
      Guard = Ctx.mkUlt(Subject, C);
      break;
    case 2:
      Guard = Ctx.mkUle(Subject, C);
      break;
    case 3:
      Guard = Ctx.mkSlt(Subject, C);
      break;
    default: {
      uint64_t Lo = Rng.below(elemCard(O)), Hi = Rng.below(elemCard(O));
      if (Lo > Hi)
        std::swap(Lo, Hi);
      Guard = Ctx.mkInRange(Subject, Lo, Hi);
      break;
    }
    }
    return Rule::ite(Guard,
                     rule(A, O, Arity, NumStates, Depth - 1, Finalizer),
                     rule(A, O, Arity, NumStates, Depth - 1, Finalizer));
  }
};

} // namespace efc::testing

#endif // EFC_TESTS_COMMON_RANDOMBST_H
