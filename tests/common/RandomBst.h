//===- tests/common/RandomBst.h - Random transducer generator --*- C++ -*-===//
///
/// \file
/// Shared generator of random well-formed BSTs over bv4 elements, used by
/// the fusion and RBBE property suites.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TESTS_COMMON_RANDOMBST_H
#define EFC_TESTS_COMMON_RANDOMBST_H

#include "bst/Bst.h"
#include "support/Stopwatch.h"

namespace efc::testing {

class RandomBstGen {
public:
  RandomBstGen(TermContext &Ctx, SplitMix64 &Rng) : Ctx(Ctx), Rng(Rng) {}

  Bst make(unsigned NumStates) {
    Bst A(Ctx, Ctx.bv(4), Ctx.bv(4), Ctx.bv(4), NumStates,
          unsigned(Rng.below(NumStates)), Value::bv(4, Rng.below(16)));
    for (unsigned Q = 0; Q < NumStates; ++Q) {
      A.setDelta(Q, rule(A, NumStates, 2, /*Finalizer=*/false));
      if (Rng.below(2))
        A.setFinalizer(Q, rule(A, NumStates, 1, /*Finalizer=*/true));
    }
    return A;
  }

  std::vector<Value> randomInput(size_t MaxLen) {
    std::vector<Value> In;
    size_t N = Rng.below(MaxLen + 1);
    for (size_t I = 0; I < N; ++I)
      In.push_back(Value::bv(4, Rng.below(16)));
    return In;
  }

private:
  TermContext &Ctx;
  SplitMix64 &Rng;

  TermRef expr(const Bst &A, bool Finalizer, int Depth) {
    TermRef R = A.regVar();
    TermRef X = Finalizer ? R : A.inputVar();
    if (Depth == 0) {
      switch (Rng.below(3)) {
      case 0:
        return X;
      case 1:
        return R;
      default:
        return Ctx.bvConst(4, Rng.below(16));
      }
    }
    TermRef L = expr(A, Finalizer, Depth - 1);
    TermRef Rt = expr(A, Finalizer, Depth - 1);
    switch (Rng.below(4)) {
    case 0:
      return Ctx.mkAdd(L, Rt);
    case 1:
      return Ctx.mkBvXor(L, Rt);
    case 2:
      return Ctx.mkSub(L, Rt);
    default:
      return Ctx.mkBvAnd(L, Rt);
    }
  }

  RulePtr rule(const Bst &A, unsigned NumStates, int Depth,
               bool Finalizer) {
    if (Depth == 0 || Rng.below(3) == 0) {
      if (Rng.below(6) == 0)
        return Rule::undef();
      std::vector<TermRef> Outs;
      size_t N = Rng.below(3);
      for (size_t I = 0; I < N; ++I)
        Outs.push_back(expr(A, Finalizer, 1));
      return Rule::base(std::move(Outs), unsigned(Rng.below(NumStates)),
                        expr(A, Finalizer, 1));
    }
    TermRef Subject = Finalizer ? A.regVar() : A.inputVar();
    uint64_t Lo = Rng.below(16), Hi = Rng.below(16);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    return Rule::ite(Ctx.mkInRange(Subject, Lo, Hi),
                     rule(A, NumStates, Depth - 1, Finalizer),
                     rule(A, NumStates, Depth - 1, Finalizer));
  }
};

} // namespace efc::testing

#endif // EFC_TESTS_COMMON_RANDOMBST_H
