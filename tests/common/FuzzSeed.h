//===- tests/common/FuzzSeed.h - Reproducible fuzz seeding ------*- C++ -*-===//
///
/// \file
/// One knob for every randomized suite: each property test seeds its RNG
/// with a fixed literal (deterministic CI), and `EFC_FUZZ_SEED` overrides
/// all of them uniformly for exploration or for replaying a failure a
/// colleague reported:
///
///   EFC_FUZZ_SEED=0xbadc0de ctest -R fusion_test
///
/// Suites print the effective seed in their failure messages (seedNote),
/// so any randomized failure is reproducible from the log alone even when
/// the seed came from the environment.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TESTS_COMMON_FUZZSEED_H
#define EFC_TESTS_COMMON_FUZZSEED_H

#include "support/EnvParse.h"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace efc::testing {

/// The suite's fixed default, unless EFC_FUZZ_SEED (decimal or 0x-hex)
/// overrides it.
inline uint64_t fuzzSeed(uint64_t Default) {
  return env::u64("EFC_FUZZ_SEED", Default, 0, UINT64_MAX, /*Base=*/0);
}

/// Failure-message suffix making the run reproducible from the log:
/// "[seed 0xd1ff; rerun: EFC_FUZZ_SEED=0xd1ff]".
inline std::string seedNote(uint64_t Seed) {
  char Buf[80];
  snprintf(Buf, sizeof(Buf), "[seed 0x%llx; rerun: EFC_FUZZ_SEED=0x%llx]",
           (unsigned long long)Seed, (unsigned long long)Seed);
  return Buf;
}

} // namespace efc::testing

#endif // EFC_TESTS_COMMON_FUZZSEED_H
