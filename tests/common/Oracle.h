//===- tests/common/Oracle.h - Differential equivalence oracle -*- C++ -*-===//
///
/// \file
/// The correctness gate behind every backend and transformation of this
/// repo: given a pipeline of BST stages and an input, the oracle runs the
/// composed reference interpretation (runBst stage by stage — the paper's
/// ⟦B⟧ ∘ ⟦A⟧) and asserts that every enabled execution path observes the
/// same output, including Undef rejection:
///
///   * per-stage bytecode VM chain            (BK_Vm)
///   * fuseChain, interpreted                 (BK_Fused)
///   * fuseChain, on the VM                   (BK_FusedVm)
///   * RBBE of the fused transducer, interp   (BK_Rbbe)
///   * RBBE of the fused transducer, VM       (BK_RbbeVm)
///   * byte-class fast path over fused VM     (BK_FastPath)
///   * byte-class fast path over RBBE'd VM    (BK_RbbeFast)
///   * fast path fed in tiny chunks           (BK_FastSkip: cuts inside
///     run-kernel spans, so runs must resume across feed() boundaries)
///   * data-parallel speculate-and-stitch     (BK_Parallel, tiny chunks)
///   * generated C++ compiled to a .so        (BK_Native, host compiler)
///
/// A greedy shrinker minimizes failing (pipeline, input) pairs by stage
/// removal, state removal, rule-tree pruning and input truncation before
/// reporting.  Used by the property suites and by tools/efc-fuzz.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_TESTS_COMMON_ORACLE_H
#define EFC_TESTS_COMMON_ORACLE_H

#include "bst/Bst.h"
#include "codegen/NativeCompile.h"
#include "fusion/Fusion.h"
#include "parallel/Parallel.h"
#include "rbbe/Rbbe.h"
#include "vm/FastPath.h"
#include "vm/Vm.h"

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace efc::testing {

/// Execution paths the oracle pins to the reference semantics.  The
/// composed reference interpretation is always run: it *is* the oracle.
enum Backend : unsigned {
  BK_Vm = 1u << 0,      ///< per-stage bytecode VM, stages chained
  BK_Fused = 1u << 1,   ///< fuseChain → reference interpreter
  BK_FusedVm = 1u << 2, ///< fuseChain → bytecode VM
  BK_Rbbe = 1u << 3,    ///< RBBE(fused) → reference interpreter
  BK_RbbeVm = 1u << 4,  ///< RBBE(fused) → bytecode VM
  BK_Native = 1u << 5,  ///< fused → generated C++ → dlopen'd .so
  BK_FastPath = 1u << 6, ///< fused → byte-class dispatch fast path
  BK_RbbeFast = 1u << 7, ///< RBBE(fused) → byte-class dispatch fast path
  /// Fast path driven through FastPathCursor in 1/3/7-element chunks, so
  /// every run-kernel span is cut inside a run at some feed() boundary.
  BK_FastSkip = 1u << 8,
  /// Data-parallel executor (src/parallel/) over the fused fast path,
  /// with adversarially tiny chunking knobs so even short oracle inputs
  /// get split, speculated and stitched.
  BK_Parallel = 1u << 9,

  BK_Default =
      BK_Vm | BK_Fused | BK_FusedVm | BK_Rbbe | BK_RbbeVm | BK_FastPath |
      BK_RbbeFast | BK_FastSkip | BK_Parallel,
  BK_All = BK_Default | BK_Native,
};

/// Parses a comma-separated backend list ("vm,fused,rbbe", "all",
/// "default", "native", ...).  Returns 0 and sets \p Err on failure.
unsigned parseBackends(const std::string &Spec, std::string *Err = nullptr);

/// Human-readable names of the set bits, comma separated.
std::string backendNames(unsigned Mask);

/// One observed divergence from the reference semantics.
struct Disagreement {
  std::string Backend;  ///< name of the diverging execution path
  std::string Expected; ///< reference output ("reject" or "[v0 v1 ...]")
  std::string Got;
  std::string str() const {
    return Backend + ": expected " + Expected + ", got " + Got;
  }
};

/// Renders an input/output vector like the Disagreement fields.
std::string renderValues(std::span<const Value> Vs);

/// Construction knobs.  The RBBE budgets default far below the library's
/// own defaults: random fused products occasionally hand the backward
/// reachability search a pathological instance, and budget exhaustion is
/// conservative (branches are kept), so cheap budgets keep oracle
/// construction fast without weakening the differential check.
struct OracleOptions {
  unsigned Backends = BK_Default;
  FusionOptions Fusion;
  RbbeOptions Rbbe;
  OracleOptions() {
    Rbbe.MaxSolverChecks = 200;
    Rbbe.ConflictBudget = 16;
    Rbbe.MaxPredicateNodes = 4000;
    Rbbe.TimeBudgetSeconds = 0.5;
  }
  explicit OracleOptions(unsigned Mask) : OracleOptions() { Backends = Mask; }
};

/// Builds every derived artifact (fused, RBBE'd, VM programs, native .so)
/// once, then checks inputs against all of them.
class Oracle {
public:
  /// \p Stages must chain by type (stage i's output type equals stage
  /// i+1's input type), share one TermContext, and have scalar element
  /// types.
  explicit Oracle(std::vector<Bst> Stages,
                  const OracleOptions &Opts = OracleOptions());
  Oracle(std::vector<Bst> Stages, unsigned Backends)
      : Oracle(std::move(Stages), OracleOptions(Backends)) {}

  /// Runs \p Input through every enabled backend; std::nullopt when all
  /// observations agree with the reference interpretation.
  std::optional<Disagreement> check(std::span<const Value> Input) const;

  const std::vector<Bst> &stages() const { return Stages; }
  const Bst &fused() const { return *Fused; }

  /// False when BK_Native was requested but the host compiler (or the
  /// generated code) was unavailable; check() then skips that path.
  bool nativeAvailable() const { return Native.has_value(); }
  const std::string &nativeError() const { return NativeErr; }

private:
  std::vector<Bst> Stages;
  unsigned Backends;
  std::vector<std::optional<CompiledTransducer>> StageVms;
  // Built via the shared pass pipeline (pipeline/PassManager.h) in raw
  // mode: the caller owns the TermContext, so artifacts are per-oracle.
  std::shared_ptr<const Bst> Fused, Rbbe;
  std::shared_ptr<const CompiledTransducer> FusedVm, RbbeVm;
  std::shared_ptr<const FastPathPlan> FusedFast, RbbeFast;
  std::shared_ptr<const parallel::ParallelPlan> FusedPar;
  std::optional<NativeTransducer> Native;
  std::string NativeErr;
};

/// One-shot convenience wrapper.
std::optional<Disagreement> checkPipeline(std::vector<Bst> Stages,
                                          std::span<const Value> Input,
                                          unsigned Backends = BK_Default);

/// Outcome of minimizing a failing (pipeline, input) pair.
struct ShrinkResult {
  std::vector<Bst> Stages;
  std::vector<Value> Input;
  Disagreement Failure; ///< from the last failing re-check
  unsigned Attempts = 0; ///< candidate re-checks performed
  unsigned Accepted = 0; ///< candidates that kept the failure
};

/// Predicate deciding whether a candidate still fails; lets tests drive
/// the shrinker with synthetic failures.
using FailurePred = std::function<std::optional<Disagreement>(
    const std::vector<Bst> &, std::span<const Value>)>;

/// Greedy minimization under an arbitrary failure predicate: repeatedly
/// tries stage removal, input truncation, control-state removal and
/// rule-tree pruning (Ite collapse, output dropping, Undef substitution),
/// keeping any candidate for which \p StillFails holds.
ShrinkResult shrinkWith(const FailurePred &StillFails, std::vector<Bst> Stages,
                        std::vector<Value> Input, unsigned MaxAttempts = 4000);

/// Minimization against the differential oracle itself: a candidate is
/// kept when *some* backend in \p Backends still disagrees.
ShrinkResult shrink(std::vector<Bst> Stages, std::vector<Value> Input,
                    unsigned Backends, unsigned MaxAttempts = 4000);

/// "3 stages, 2+4+1 states, 17 branches, input len 5" — for reports.
std::string pipelineSummary(const std::vector<Bst> &Stages,
                            std::span<const Value> Input);

} // namespace efc::testing

#endif // EFC_TESTS_COMMON_ORACLE_H
