//===- tests/data/DatasetsTest.cpp - Synthetic dataset checks -------------===//

#include "data/Datasets.h"
#include "stdlib/Reference.h"

#include <gtest/gtest.h>

using namespace efc;

namespace {

TEST(DatasetsTest, CsvShape) {
  std::string Csv = data::makeCsv(1, 4096, 6, 3, 1000);
  ASSERT_GE(Csv.size(), 4096u);
  // Every line has exactly 6 fields and an integer at position 3.
  size_t Pos = 0, Lines = 0;
  while (Pos < Csv.size()) {
    size_t End = Csv.find('\n', Pos);
    ASSERT_NE(End, std::string::npos);
    std::string Line = Csv.substr(Pos, End - Pos);
    std::vector<std::string> Fields;
    size_t F = 0;
    for (;;) {
      size_t C = Line.find(',', F);
      if (C == std::string::npos) {
        Fields.push_back(Line.substr(F));
        break;
      }
      Fields.push_back(Line.substr(F, C - F));
      F = C + 1;
    }
    ASSERT_EQ(Fields.size(), 6u) << Line;
    for (char Ch : Fields[3])
      EXPECT_TRUE(isdigit((unsigned char)Ch));
    EXPECT_FALSE(Fields[3].empty());
    Pos = End + 1;
    ++Lines;
  }
  EXPECT_GT(Lines, 10u);
}

TEST(DatasetsTest, Deterministic) {
  EXPECT_EQ(data::makeCsv(7, 1000, 5, 2, 99),
            data::makeCsv(7, 1000, 5, 2, 99));
  EXPECT_NE(data::makeCsv(7, 1000, 5, 2, 99),
            data::makeCsv(8, 1000, 5, 2, 99));
  EXPECT_EQ(data::makeEnglishText(3, 500), data::makeEnglishText(3, 500));
}

TEST(DatasetsTest, EnglishTextIsAsciiWithNewlines) {
  std::string T = data::makeEnglishText(2, 8000);
  size_t Newlines = 0;
  for (unsigned char C : T) {
    EXPECT_LT(C, 0x80u);
    if (C == '\n')
      ++Newlines;
  }
  EXPECT_GT(Newlines, 20u);
}

TEST(DatasetsTest, ChineseTextIsCjk) {
  std::u16string T = data::makeChineseText(4, 1000);
  size_t Cjk = 0;
  for (char16_t C : T)
    if (C >= 0x4E00 && C <= 0x9FFF)
      ++Cjk;
  EXPECT_GT(Cjk, T.size() / 2);
  // And it UTF-8 encodes cleanly (no lone surrogates).
  EXPECT_TRUE(ref::utf8Encode(T).has_value());
}

TEST(DatasetsTest, RandomUtf16SurrogateModes) {
  std::u16string NoSurr = data::makeRandomUtf16(5, 5000, false);
  for (char16_t C : NoSurr)
    EXPECT_FALSE(C >= 0xD800 && C <= 0xDFFF);
  std::u16string WithSurr = data::makeRandomUtf16(5, 5000, true);
  size_t Surr = 0;
  for (char16_t C : WithSurr)
    if (C >= 0xD800 && C <= 0xDFFF)
      ++Surr;
  EXPECT_GT(Surr, 0u) << "random dataset should contain surrogates";
}

TEST(DatasetsTest, Base64IntsRoundTrip) {
  std::vector<uint32_t> Ints = data::base64IntsPayload(6, 100, 1u << 30);
  std::string Encoded = data::makeBase64Ints(6, 100, 1u << 30);
  auto Raw = ref::base64Decode(Encoded);
  ASSERT_TRUE(Raw.has_value());
  ASSERT_EQ(Raw->size(), 400u);
  for (size_t I = 0; I < Ints.size(); ++I) {
    uint32_t V = uint32_t(uint8_t((*Raw)[4 * I])) |
                 (uint32_t(uint8_t((*Raw)[4 * I + 1])) << 8) |
                 (uint32_t(uint8_t((*Raw)[4 * I + 2])) << 16) |
                 (uint32_t(uint8_t((*Raw)[4 * I + 3])) << 24);
    ASSERT_EQ(V, Ints[I]) << I;
  }
}

TEST(DatasetsTest, XmlDocumentsAreBalanced) {
  // Cheap well-formedness check: tags balance and nesting depth returns
  // to zero.
  for (std::string Doc :
       {data::makeTpcDiXml(1, 20000), data::makePirXml(2, 20000),
        data::makeDblpXml(3, 20000), data::makeMondialXml(4, 20000)}) {
    int Depth = 0;
    size_t I = 0;
    while (I < Doc.size()) {
      if (Doc[I] != '<') {
        ++I;
        continue;
      }
      size_t End = Doc.find('>', I);
      ASSERT_NE(End, std::string::npos);
      std::string Tag = Doc.substr(I, End - I + 1);
      if (Tag[1] == '?' || Tag[1] == '!') {
        // declaration
      } else if (Tag[1] == '/') {
        --Depth;
      } else if (Tag[Tag.size() - 2] == '/') {
        // self-closing
      } else {
        ++Depth;
      }
      ASSERT_GE(Depth, 0);
      I = End + 1;
    }
    EXPECT_EQ(Depth, 0);
  }
}

} // namespace
