//===- bench/fig11_rbbe.cpp - Figure 11: RBBE effect and compile times ----===//
//
// Regenerates the paper's Figure 11: for every evaluation pipeline, the
// number of rule branches removed by RBBE, the branches left afterwards,
// and the total time spent in fusion, RBBE and code generation.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"

#include <cstdio>
#include <functional>
#include <vector>

using namespace efc;
using namespace efc::bench;

int main() {
  printf("Figure 11: branches removed by RBBE, branches left, and total\n"
         "time spent in fusion, RBBE and code generation.\n\n");
  printf("%-14s %6s %6s %8s\n", "Pipeline", "Rem.", "Left", "Time");
  printf("---------------------------------------\n");

  std::vector<std::function<BuiltPipeline()>> Builders = {
      [] { return makeBase64DeltaPipeline(); },
      [] { return makeCsvMaxPipeline(); },
      [] { return makeBase64AvgPipeline(); },
      [] { return makeUtf8LinesPipeline(); },
      [] { return makeCcIdPipeline(); },
      [] { return makeChsiPipeline("cancer"); },
      [] { return makeChsiPipeline("births"); },
      [] { return makeChsiPipeline("deaths"); },
      [] { return makeSboPipeline("employees"); },
      [] { return makeSboPipeline("receipts"); },
      [] { return makeSboPipeline("payroll"); },
      [] { return makeTpcDiSqlPipeline(); },
      [] { return makePirProteinsPipeline(); },
      [] { return makeDblpOldestPipeline(); },
      [] { return makeMondialPipeline(); },
      [] { return makeHtmlEncodePipeline(); },
      [] { return makeUtf8ToIntPipeline(); },
  };

  for (auto &Make : Builders) {
    BuiltPipeline P = Make();
    unsigned Removed =
        P.RStats.BranchesRemoved + P.RStats.FinalBranchesRemoved;
    printf("%-14s %6u %6u %7.1fs\n", P.Name.c_str(), Removed,
           P.RStats.BranchesLeft, P.TotalSeconds);
    fflush(stdout);
  }
  return 0;
}
