//===- bench/parallel_scaling.cpp - Data-parallel thread scaling ----------===//
//
// Thread-scaling sweep of the data-parallel executor (src/parallel/):
// HTML-English (Rep ⊗ HtmlEncode over English prose) and CSV-max at 1, 2,
// 4 and 8 threads, against the sequential fast path as the 1x baseline.
// Rows land in BENCH_throughput.json as "<Pipeline>-parN/Parallel", so
// the scaling trajectory is tracked across PRs like every other number.
//
// Input size defaults to EFC_BENCH_MB (2 MB); the acceptance runs of
// EXPERIMENTS.md use EFC_BENCH_MB=100.  On a single-core container the
// sweep still runs (the worker pool just time-slices); speedup numbers
// are only meaningful with >= 4 hardware threads.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "bench/common/ThroughputJson.h"
#include "data/Datasets.h"
#include "parallel/Parallel.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

using namespace efc;
using namespace efc::bench;

namespace {

struct Prepared {
  std::shared_ptr<BuiltPipeline> P;
  std::shared_ptr<parallel::ParallelPlan> Plan;
  std::shared_ptr<std::vector<uint64_t>> In;
  int64_t Bytes = 0;
};

void registerScaling(const std::string &Name, Prepared Pr) {
  // Sequential fast path: the 1x reference every parallel row is judged
  // against (same machine, same input, same JSON file).  All rows use
  // wall-clock time — the default CPU-time rate only counts the calling
  // thread and would overstate multi-threaded throughput wildly.
  benchmark::RegisterBenchmark(
      (Name + "/Sequential").c_str(), [Pr](benchmark::State &S) {
        for (auto _ : S) {
          auto Out = runFastPath(*Pr.P->FastPlan, *Pr.P->CompiledFused,
                                 *Pr.In);
          if (!Out) {
            S.SkipWithError("rejected");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * Pr.Bytes);
      })->UseRealTime();

  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    benchmark::RegisterBenchmark(
        (Name + "-par" + std::to_string(Threads) + "/Parallel").c_str(),
        [Pr, Threads](benchmark::State &S) {
          parallel::ParallelOptions PO;
          PO.Threads = Threads;
          for (auto _ : S) {
            auto Out = parallel::runParallel(*Pr.Plan, *Pr.P->FastPlan,
                                             *Pr.P->CompiledFused, *Pr.In,
                                             PO);
            if (!Out) {
              S.SkipWithError("rejected");
              return;
            }
            benchmark::DoNotOptimize(Out);
          }
          S.SetBytesProcessed(int64_t(S.iterations()) * Pr.Bytes);
        })->UseRealTime();
  }
}

Prepared prepare(BuiltPipeline BP, std::vector<uint64_t> In) {
  Prepared Pr;
  Pr.P = std::make_shared<BuiltPipeline>(std::move(BP));
  Pr.Plan = std::make_shared<parallel::ParallelPlan>(
      parallel::ParallelPlan::build(*Pr.P->CompiledFused, *Pr.P->FastPlan));
  Pr.Bytes = int64_t(In.size());
  Pr.In = std::make_shared<std::vector<uint64_t>>(std::move(In));
  return Pr;
}

} // namespace

int main(int argc, char **argv) {
  const size_t Bytes = benchBytes();
  if (pipelineEnabled("HTML-English"))
    registerScaling("HTML-English",
                    prepare(makeHtmlEncodePipeline(),
                            rawOfBytes(data::makeEnglishText(1, Bytes))));
  if (pipelineEnabled("CSV-max"))
    registerScaling("CSV-max",
                    prepare(makeCsvMaxPipeline(),
                            rawOfBytes(data::makeCsv(2, Bytes, 4, 2,
                                                     999999))));
  return benchMainWithThroughputJson(argc, argv);
}
