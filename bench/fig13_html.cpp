//===- bench/fig13_html.cpp - Figure 13: HTML encoding throughputs --------===//
//
// Regenerates the paper's Figure 13: Rep ⊗ HtmlEncode (fused with our
// tool) vs the hand-fused AntiXssEncoder.HtmlEncode equivalent vs the
// modular method-call composition, on three datasets: uniformly Random
// chars (including misplaced surrogates), English, and Chinese.
// Throughput is reported over the UTF-16 size (2 bytes per code unit), as
// in the paper.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "bench/common/ThroughputJson.h"
#include "data/Datasets.h"
#include "stdlib/Reference.h"

#include <benchmark/benchmark.h>

using namespace efc;
using namespace efc::bench;

namespace {

void registerDataset(const std::string &Name, const std::u16string &Text,
                     std::vector<std::shared_ptr<BuiltPipeline>> &Keep) {
  auto P = std::make_shared<BuiltPipeline>(makeHtmlEncodePipeline());
  Keep.push_back(P);
  auto In = std::make_shared<std::vector<uint64_t>>(rawOfChars(Text));
  auto Chars = std::make_shared<std::u16string>(Text);
  int64_t Utf16Bytes = int64_t(Text.size()) * 2;

  benchmark::RegisterBenchmark(
      (Name + "/Fused").c_str(), [P, In, Utf16Bytes](benchmark::State &S) {
        for (auto _ : S) {
          auto Out = P->CompiledFused->run(*In);
          if (!Out) {
            S.SkipWithError("rejected");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * Utf16Bytes);
      });

  benchmark::RegisterBenchmark(
      (Name + "/FusedFastPath").c_str(),
      [P, In, Utf16Bytes](benchmark::State &S) {
        for (auto _ : S) {
          auto Out = runFastPath(*P->FastPlan, *P->CompiledFused, *In);
          if (!Out) {
            S.SkipWithError("rejected");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * Utf16Bytes);
      });

  if (P->Native) {
    benchmark::RegisterBenchmark(
        (Name + "/FusedNative").c_str(),
        [P, In, Utf16Bytes](benchmark::State &S) {
          for (auto _ : S) {
            auto Out = P->Native->run(*In);
            if (!Out) {
              S.SkipWithError("rejected");
              return;
            }
            benchmark::DoNotOptimize(Out);
          }
          S.SetBytesProcessed(int64_t(S.iterations()) * Utf16Bytes);
        });
  }

  benchmark::RegisterBenchmark(
      (Name + "/AntiXss").c_str(),
      [Chars, Utf16Bytes](benchmark::State &S) {
        for (auto _ : S) {
          std::u16string Out = ref::antiXssHtmlEncode(*Chars);
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * Utf16Bytes);
      });

  benchmark::RegisterBenchmark(
      (Name + "/MethodCall").c_str(),
      [P, In, Utf16Bytes](benchmark::State &S) {
        PushPipeline Push(P->stagePtrs());
        std::vector<uint64_t> Out;
        for (auto _ : S) {
          Out.clear();
          if (!Push.run(*In, Out)) {
            S.SkipWithError("rejected");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * Utf16Bytes);
      });
}

} // namespace

int main(int argc, char **argv) {
  size_t Chars = benchBytes() / 2; // UTF-16 code units
  std::vector<std::shared_ptr<BuiltPipeline>> Keep;
  if (pipelineEnabled("HTML-Random"))
    registerDataset("HTML-Random", data::makeRandomUtf16(301, Chars, true),
                    Keep);
  if (pipelineEnabled("HTML-English"))
    registerDataset("HTML-English",
                    [&] {
                      std::string T = data::makeEnglishText(302, Chars);
                      return std::u16string(T.begin(), T.end());
                    }(),
                    Keep);
  if (pipelineEnabled("HTML-Chinese"))
    registerDataset("HTML-Chinese", data::makeChineseText(303, Chars),
                    Keep);

  return benchMainWithThroughputJson(argc, argv);
}
