//===- bench/ablate_minimize.cpp - Future-work minimization ablation ------===//
//
// The paper's conclusion defers "minimization of symbolic finite
// automata to simplify control flow" to future work; this repository
// implements it (bst/Minimize.h).  This ablation reports control-state
// counts for the fused evaluation pipelines before and after
// minimization, plus generated-code size.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "bst/Minimize.h"
#include "vm/Vm.h"

#include <cstdio>
#include <functional>

using namespace efc;
using namespace efc::bench;

int main() {
  printf("Control-state minimization of fused pipelines (paper future "
         "work):\n\n");
  printf("%-14s %8s %8s %10s %10s\n", "Pipeline", "states", "minim.",
         "code", "min.code");
  printf("------------------------------------------------------\n");

  std::vector<std::function<BuiltPipeline()>> Builders = {
      [] { return makeUtf8ToIntPipeline(); },
      [] { return makeUtf8LinesPipeline(); },
      [] { return makeBase64DeltaPipeline(); },
      [] { return makeSboPipeline("employees"); },
      [] { return makeMondialPipeline(); },
      [] { return makeHtmlEncodePipeline(); },
  };
  for (auto &Make : Builders) {
    BuiltPipeline P = Make();
    MinimizeStats St;
    Bst M = minimizeStates(*P.Fused, &St);
    auto CM = CompiledTransducer::compile(M);
    printf("%-14s %8u %8u %10zu %10zu\n", P.Name.c_str(),
           St.StatesBefore, St.StatesAfter, P.CompiledFused->codeSize(),
           CM ? CM->codeSize() : 0);
    fflush(stdout);
  }
  return 0;
}
