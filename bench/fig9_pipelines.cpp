//===- bench/fig9_pipelines.cpp - Figure 9: pipeline throughputs ----------===//
//
// Regenerates the paper's Figure 9: for each data-processing pipeline,
// throughput of four variants:
//
//   LINQ        — per-stage enumerators pulling through buffers
//   MethodCall  — per-element push composition of the compiled stages
//   HandWritten — idiomatic C++ with arrays between phases (reference
//                 implementations + general-purpose regex library)
//   Fused       — the ⊗-fused, RBBE-cleaned transducer, one pass
//
// Reported counter: bytes_per_second over the input size.
//
//===----------------------------------------------------------------------===//

#include "bench/baselines/RegexLib.h"
#include "bench/common/BenchCommon.h"
#include "bench/common/ThroughputJson.h"
#include "data/Datasets.h"
#include "stdlib/Reference.h"

#include <benchmark/benchmark.h>

#include <functional>

using namespace efc;
using namespace efc::bench;

namespace {

//===----------------------------------------------------------------------===
// Variant runners over a BuiltPipeline
//===----------------------------------------------------------------------===

void runLinq(benchmark::State &State, const BuiltPipeline &P,
             const std::vector<uint64_t> &In) {
  for (auto _ : State) {
    auto Out = runPullPipeline(P.stagePtrs(), In);
    benchmark::DoNotOptimize(Out);
    if (!Out)
      State.SkipWithError("pipeline rejected its input");
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(In.size()));
}

void runMethodCall(benchmark::State &State, const BuiltPipeline &P,
                   const std::vector<uint64_t> &In) {
  PushPipeline Push(P.stagePtrs());
  std::vector<uint64_t> Out;
  for (auto _ : State) {
    Out.clear();
    bool Ok = Push.run(In, Out);
    benchmark::DoNotOptimize(Out);
    if (!Ok)
      State.SkipWithError("pipeline rejected its input");
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(In.size()));
}

void runFused(benchmark::State &State, const BuiltPipeline &P,
              const std::vector<uint64_t> &In) {
  for (auto _ : State) {
    auto Out = P.CompiledFused->run(In);
    benchmark::DoNotOptimize(Out);
    if (!Out)
      State.SkipWithError("pipeline rejected its input");
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(In.size()));
}

void runFusedFastPath(benchmark::State &State, const BuiltPipeline &P,
                      const std::vector<uint64_t> &In) {
  for (auto _ : State) {
    auto Out = runFastPath(*P.FastPlan, *P.CompiledFused, In);
    benchmark::DoNotOptimize(Out);
    if (!Out)
      State.SkipWithError("pipeline rejected its input");
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(In.size()));
}

//===----------------------------------------------------------------------===
// Hand-written implementations (arrays between phases)
//===----------------------------------------------------------------------===

std::vector<uint32_t> assembleInts(const std::string &Bytes) {
  std::vector<uint32_t> Out;
  for (size_t I = 0; I + 4 <= Bytes.size(); I += 4)
    Out.push_back(uint32_t(uint8_t(Bytes[I])) |
                  (uint32_t(uint8_t(Bytes[I + 1])) << 8) |
                  (uint32_t(uint8_t(Bytes[I + 2])) << 16) |
                  (uint32_t(uint8_t(Bytes[I + 3])) << 24));
  return Out;
}

std::string handBase64Avg(const std::string &In) {
  auto Raw = ref::base64Decode(In);
  std::vector<uint32_t> Ints = assembleInts(*Raw);
  std::vector<uint32_t> Avg = ref::windowedAverage(Ints, 10);
  std::string Ser;
  Ser.reserve(Avg.size() * 4);
  for (uint32_t V : Avg) {
    Ser.push_back(char(V & 0xFF));
    Ser.push_back(char((V >> 8) & 0xFF));
    Ser.push_back(char((V >> 16) & 0xFF));
    Ser.push_back(char((V >> 24) & 0xFF));
  }
  return ref::base64Encode(Ser);
}

std::string handBase64Delta(const std::string &In) {
  auto Raw = ref::base64Decode(In);
  std::vector<uint32_t> Ints = assembleInts(*Raw);
  std::vector<uint32_t> Ds = ref::deltas(Ints);
  std::u16string Text;
  for (uint32_t D : Ds) {
    Text += ref::intToDecimal(D);
    Text.push_back(u'\n');
  }
  return *ref::utf8Encode(Text);
}

std::string handUtf8Lines(const std::string &In) {
  std::u16string Chars = *ref::utf8Decode(In);
  uint32_t Lines = 0;
  for (char16_t C : Chars)
    if (C == u'\n')
      ++Lines;
  return *ref::utf8Encode(ref::intToDecimal(Lines));
}

/// Hand-written CSV pipelines: decode, run the general-purpose regex
/// library (captures materialized), then aggregate.
enum class Agg { Max, Min, Avg, MaxLen };

std::string handCsv(const std::string &In,
                    const baselines::InterpretedRegex &Re, Agg Kind) {
  std::u16string Chars = *ref::utf8Decode(In);
  auto Captures = Re.findAll(Chars);
  if (!Captures)
    return "";
  uint64_t Acc = Kind == Agg::Min ? ~uint64_t(0) : 0;
  uint64_t Sum = 0, Count = 0;
  for (const std::u16string &C : *Captures) {
    uint32_t V = Kind == Agg::MaxLen ? uint32_t(C.size())
                                     : *ref::toInt(C);
    switch (Kind) {
    case Agg::Max:
    case Agg::MaxLen:
      Acc = std::max<uint64_t>(Acc, V);
      break;
    case Agg::Min:
      Acc = std::min<uint64_t>(Acc, V);
      break;
    case Agg::Avg:
      Sum += V;
      ++Count;
      break;
    }
  }
  if (Kind == Agg::Avg)
    Acc = Count ? Sum / Count : 0;
  return *ref::utf8Encode(ref::intToDecimal(uint32_t(Acc)));
}

void runHand(benchmark::State &State,
             const std::function<std::string()> &Fn, size_t Bytes) {
  for (auto _ : State) {
    std::string Out = Fn();
    benchmark::DoNotOptimize(Out);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}

//===----------------------------------------------------------------------===
// Registration
//===----------------------------------------------------------------------===

struct Registered {
  std::shared_ptr<BuiltPipeline> P;
  std::shared_ptr<std::vector<uint64_t>> In;
};

Registered registerVariants(BuiltPipeline Built, std::vector<uint64_t> In) {
  Registered R;
  R.P = std::make_shared<BuiltPipeline>(std::move(Built));
  R.In = std::make_shared<std::vector<uint64_t>>(std::move(In));
  auto P = R.P;
  auto Data = R.In;
  benchmark::RegisterBenchmark((P->Name + "/LINQ").c_str(),
                               [P, Data](benchmark::State &S) {
                                 runLinq(S, *P, *Data);
                               });
  benchmark::RegisterBenchmark((P->Name + "/MethodCall").c_str(),
                               [P, Data](benchmark::State &S) {
                                 runMethodCall(S, *P, *Data);
                               });
  benchmark::RegisterBenchmark((P->Name + "/Fused").c_str(),
                               [P, Data](benchmark::State &S) {
                                 runFused(S, *P, *Data);
                               });
  benchmark::RegisterBenchmark((P->Name + "/FusedFastPath").c_str(),
                               [P, Data](benchmark::State &S) {
                                 runFusedFastPath(S, *P, *Data);
                               });
  if (P->Native) {
    benchmark::RegisterBenchmark(
        (P->Name + "/FusedNative").c_str(),
        [P, Data](benchmark::State &S) {
          for (auto _ : S) {
            auto Out = P->Native->run(*Data);
            benchmark::DoNotOptimize(Out);
            if (!Out)
              S.SkipWithError("pipeline rejected its input");
          }
          S.SetBytesProcessed(int64_t(S.iterations()) *
                              int64_t(Data->size()));
        });
  }
  return R;
}

void registerHand(const std::string &Name,
                  std::function<std::string()> Fn, size_t Bytes) {
  benchmark::RegisterBenchmark(
      (Name + "/HandWritten").c_str(),
      [Fn = std::move(Fn), Bytes](benchmark::State &S) {
        runHand(S, Fn, Bytes);
      });
}

std::string csvPattern(unsigned Column, bool AnyText) {
  return "(?:(?:[^,\\n]*,){" + std::to_string(Column) + "}(?<v>" +
         (AnyText ? "[^,\\n]+" : "\\d+") + "),[^\\n]*\\n)*";
}

} // namespace

int main(int argc, char **argv) {
  size_t MB = benchBytes();
  std::vector<Registered> Keep;

  // Base64-avg / Base64-delta.  EFC_BENCH_PIPELINES (comma-separated
  // names) restricts which pipelines are even *built* — ci.sh's smoke run
  // uses it to keep fusion time out of the loop.
  if (pipelineEnabled("Base64-avg") || pipelineEnabled("Base64-delta")) {
    std::string In = data::makeBase64Ints(101, MB / 4, 1u << 30);
    if (pipelineEnabled("Base64-avg")) {
      Keep.push_back(
          registerVariants(makeBase64AvgPipeline(), rawOfBytes(In)));
      registerHand("Base64-avg", [In] { return handBase64Avg(In); },
                   In.size());
    }
    if (pipelineEnabled("Base64-delta")) {
      Keep.push_back(
          registerVariants(makeBase64DeltaPipeline(), rawOfBytes(In)));
      registerHand("Base64-delta", [In] { return handBase64Delta(In); },
                   In.size());
    }
  }
  // UTF8-lines over English text.
  if (pipelineEnabled("UTF8-lines")) {
    std::string In = data::makeEnglishText(102, MB);
    Keep.push_back(
        registerVariants(makeUtf8LinesPipeline(), rawOfBytes(In)));
    registerHand("UTF8-lines", [In] { return handUtf8Lines(In); },
                 In.size());
  }
  // CSV-max (third column, max length).
  if (pipelineEnabled("CSV-max")) {
    std::string In = data::makeCsv(103, MB, 6, 4, 100000);
    auto Re = baselines::InterpretedRegex::compile(csvPattern(2, true));
    Keep.push_back(registerVariants(makeCsvMaxPipeline(), rawOfBytes(In)));
    registerHand("CSV-max",
                 [In, Re] { return handCsv(In, *Re, Agg::MaxLen); },
                 In.size());
  }
  // CHSI (10 columns), SBO (8 columns), CC (18 columns).
  struct CsvCase {
    const char *Name;
    std::function<BuiltPipeline()> Make;
    std::string Data;
    unsigned Column;
    Agg Kind;
  };
  std::vector<CsvCase> Cases = {
      {"CHSI-cancer", [] { return makeChsiPipeline("cancer"); },
       data::makeChsiCsv(104, MB, 7), 7, Agg::Avg},
      {"CHSI-births", [] { return makeChsiPipeline("births"); },
       data::makeChsiCsv(105, MB, 5), 5, Agg::Min},
      {"CHSI-deaths", [] { return makeChsiPipeline("deaths"); },
       data::makeChsiCsv(106, MB, 3), 3, Agg::Max},
      {"SBO-employees", [] { return makeSboPipeline("employees"); },
       data::makeSboCsv(107, MB, 5), 5, Agg::Max},
      {"SBO-receipts", [] { return makeSboPipeline("receipts"); },
       data::makeSboCsv(108, MB, 6), 6, Agg::Min},
      {"SBO-payroll", [] { return makeSboPipeline("payroll"); },
       data::makeSboCsv(109, MB, 7), 7, Agg::Avg},
      {"CC-id", [] { return makeCcIdPipeline(); },
       data::makeCcCsv(110, MB), 0, Agg::Max},
  };
  for (CsvCase &C : Cases) {
    if (!pipelineEnabled(C.Name))
      continue;
    Keep.push_back(registerVariants(C.Make(), rawOfBytes(C.Data)));
    auto Re =
        baselines::InterpretedRegex::compile(csvPattern(C.Column, false));
    std::string In = C.Data;
    Agg Kind = C.Kind;
    registerHand(C.Name, [In, Re, Kind] { return handCsv(In, *Re, Kind); },
                 In.size());
  }

  return benchMainWithThroughputJson(argc, argv);
}
