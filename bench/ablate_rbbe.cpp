//===- bench/ablate_rbbe.cpp - RBBE effect on generated code --------------===//
//
// Ablation: the same fused pipeline executed with and without RBBE
// (branch counts, VM code size, and throughput), plus the forward
// under-approximation's effect on the number of backward searches.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "data/Datasets.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace efc;
using namespace efc::bench;

namespace {

double throughputMBs(const CompiledTransducer &T,
                     const std::vector<uint64_t> &In) {
  // Warm up once, then measure a few runs.
  std::vector<uint64_t> Scratch;
  auto Probe = T.run(In);
  if (!Probe)
    return -1;
  Stopwatch W;
  int Iters = 0;
  while (W.seconds() < 1.0) {
    auto Out = T.run(In);
    ++Iters;
  }
  double Secs = W.seconds();
  return double(In.size()) * Iters / Secs / (1024 * 1024);
}

} // namespace

int main() {
  TermContext Ctx;
  Solver S(Ctx);

  printf("RBBE ablation: HtmlEncode (its h1 rules carry the paper's\n"
         "state-carried code-point constraint) on valid UTF-16 chars\n\n");
  Bst Html = lib::makeHtmlEncode(Ctx);

  RbbeStats Stats;
  Bst Clean = eliminateUnreachableBranches(Html, S, {}, &Stats);

  auto CF = CompiledTransducer::compile(Html);
  auto CC = CompiledTransducer::compile(Clean);
  std::u16string Text = data::makeRandomUtf16(7, 512 * 1024, false);
  std::vector<uint64_t> In = rawOfChars(Text);

  printf("%-22s branches=%3u code=%5zu  throughput=%7.2f MB/s\n",
         "without RBBE", Html.countBranches(), CF->codeSize(),
         throughputMBs(*CF, In));
  printf("%-22s branches=%3u code=%5zu  throughput=%7.2f MB/s\n",
         "with RBBE", Clean.countBranches(), CC->codeSize(),
         throughputMBs(*CC, In));
  printf("(RBBE removed %u transition + %u finalizer branches)\n\n",
         Stats.BranchesRemoved, Stats.FinalBranchesRemoved);

  printf("Under-approximation ablation (backward searches needed):\n");
  {
    TermContext C2;
    Solver S2(C2);
    Bst F2 = fuse(lib::makeUtf8Decode2(C2), lib::makeToInt(C2), S2);
    RbbeStats WithUA, WithoutUA;
    eliminateUnreachableBranches(F2, S2, {}, &WithUA);
    RbbeOptions NoUA;
    NoUA.UnderApprox = false;
    eliminateUnreachableBranches(F2, S2, NoUA, &WithoutUA);
    printf("  with under-approx:    ISREACHABLE calls = %u\n",
           WithUA.ReachCalls);
    printf("  without under-approx: ISREACHABLE calls = %u\n",
           WithoutUA.ReachCalls);
  }
  return 0;
}
