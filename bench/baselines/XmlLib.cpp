//===- bench/baselines/XmlLib.cpp -----------------------------------------===//

#include "bench/baselines/XmlLib.h"

using namespace efc;
using namespace efc::baselines;

namespace {

/// Shared tokenizer-ish cursor over the document.
struct Cursor {
  std::u16string_view Doc;
  size_t Pos = 0;

  bool eof() const { return Pos >= Doc.size(); }
  char16_t peek() const { return Doc[Pos]; }
};

bool isNameChar(char16_t C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
         (C >= '0' && C <= '9') || C == '_' || C == '-' || C == ':';
}

/// After '<' + name: consumes attributes; returns '>' kind.
enum class TagEnd { Open, SelfClose, Malformed };

TagEnd consumeAttrs(Cursor &C) {
  while (!C.eof()) {
    char16_t Ch = C.Doc[C.Pos++];
    if (Ch == '>')
      return TagEnd::Open;
    if (Ch == '/') {
      if (!C.eof() && C.peek() == '>') {
        ++C.Pos;
        return TagEnd::SelfClose;
      }
    }
  }
  return TagEnd::Malformed;
}

bool parseElement(Cursor &C, XmlNode &Node);

/// Parses children/text until the matching close tag; assumes the open
/// tag of \p Node was just consumed.
bool parseContent(Cursor &C, XmlNode &Node) {
  for (;;) {
    if (C.eof())
      return false;
    char16_t Ch = C.Doc[C.Pos];
    if (Ch != '<') {
      Node.Text.push_back(Ch);
      ++C.Pos;
      continue;
    }
    // '<': close tag, child, or declaration.
    if (C.Pos + 1 < C.Doc.size() && C.Doc[C.Pos + 1] == '/') {
      C.Pos += 2;
      std::u16string Name;
      while (!C.eof() && isNameChar(C.peek()))
        Name.push_back(C.Doc[C.Pos++]);
      if (C.eof() || C.Doc[C.Pos++] != '>')
        return false;
      return Name == Node.Tag;
    }
    if (C.Pos + 1 < C.Doc.size() &&
        (C.Doc[C.Pos + 1] == '?' || C.Doc[C.Pos + 1] == '!')) {
      while (!C.eof() && C.Doc[C.Pos] != '>')
        ++C.Pos;
      if (C.eof())
        return false;
      ++C.Pos;
      continue;
    }
    auto Child = std::make_unique<XmlNode>();
    if (!parseElement(C, *Child))
      return false;
    Node.Children.push_back(std::move(Child));
  }
}

bool parseElement(Cursor &C, XmlNode &Node) {
  if (C.eof() || C.Doc[C.Pos] != '<')
    return false;
  ++C.Pos;
  while (!C.eof() && isNameChar(C.peek()))
    Node.Tag.push_back(C.Doc[C.Pos++]);
  if (Node.Tag.empty())
    return false;
  switch (consumeAttrs(C)) {
  case TagEnd::Malformed:
    return false;
  case TagEnd::SelfClose:
    return true;
  case TagEnd::Open:
    return parseContent(C, Node);
  }
  return false;
}

} // namespace

std::optional<std::unique_ptr<XmlNode>>
efc::baselines::parseXmlDom(std::u16string_view Doc) {
  Cursor C{Doc, 0};
  // Skip prolog: text and declarations before the root element.
  while (!C.eof()) {
    if (C.peek() == '<') {
      if (C.Pos + 1 < Doc.size() &&
          (Doc[C.Pos + 1] == '?' || Doc[C.Pos + 1] == '!')) {
        while (!C.eof() && C.peek() != '>')
          ++C.Pos;
        if (C.eof())
          return std::nullopt;
        ++C.Pos;
        continue;
      }
      break;
    }
    ++C.Pos;
  }
  auto Root = std::make_unique<XmlNode>();
  if (!parseElement(C, *Root))
    return std::nullopt;
  // Trailing whitespace/text allowed.
  return Root;
}

namespace {

void domQueryRec(const XmlNode &Node,
                 const std::vector<std::u16string> &Path, size_t Depth,
                 std::vector<std::u16string> &Out) {
  if (Node.Tag != Path[Depth])
    return;
  if (Depth + 1 == Path.size()) {
    Out.push_back(Node.Text);
    return;
  }
  for (const auto &Child : Node.Children)
    domQueryRec(*Child, Path, Depth + 1, Out);
}

} // namespace

std::vector<std::u16string>
efc::baselines::domQuery(const XmlNode &Root,
                         const std::vector<std::u16string> &Path) {
  std::vector<std::u16string> Out;
  if (!Path.empty())
    domQueryRec(Root, Path, 0, Out);
  return Out;
}

std::optional<std::vector<std::u16string>>
efc::baselines::streamingXPath(std::u16string_view Doc,
                               const std::vector<std::u16string> &Path) {
  std::vector<std::u16string> Out;
  std::vector<std::u16string> Stack;
  std::u16string Current; ///< direct text of the currently matched element
  size_t MatchedPrefix = 0;
  size_t I = 0;

  auto fullyMatched = [&] {
    return MatchedPrefix == Path.size() && Stack.size() == Path.size();
  };

  while (I < Doc.size()) {
    char16_t Ch = Doc[I];
    if (Ch != '<') {
      if (fullyMatched())
        Current.push_back(Ch);
      ++I;
      continue;
    }
    if (I + 1 < Doc.size() && (Doc[I + 1] == '?' || Doc[I + 1] == '!')) {
      while (I < Doc.size() && Doc[I] != '>')
        ++I;
      if (I == Doc.size())
        return std::nullopt;
      ++I;
      continue;
    }
    if (I + 1 < Doc.size() && Doc[I + 1] == '/') {
      // Closing tag.
      I += 2;
      std::u16string Name;
      while (I < Doc.size() && isNameChar(Doc[I]))
        Name.push_back(Doc[I++]);
      if (I == Doc.size() || Doc[I] != '>')
        return std::nullopt;
      ++I;
      if (Stack.empty() || Stack.back() != Name)
        return std::nullopt;
      if (fullyMatched()) {
        Out.push_back(Current);
        Current.clear();
      }
      if (MatchedPrefix == Stack.size())
        --MatchedPrefix;
      Stack.pop_back();
      continue;
    }
    // Opening tag.
    ++I;
    std::u16string Name;
    while (I < Doc.size() && isNameChar(Doc[I]))
      Name.push_back(Doc[I++]);
    if (Name.empty())
      return std::nullopt;
    bool SelfClose = false;
    while (I < Doc.size()) {
      char16_t A = Doc[I++];
      if (A == '>')
        break;
      if (A == '/' && I < Doc.size() && Doc[I] == '>') {
        ++I;
        SelfClose = true;
        break;
      }
    }
    if (SelfClose)
      continue; // empty element: no text, no stack change
    Stack.push_back(Name);
    if (MatchedPrefix + 1 == Stack.size() &&
        MatchedPrefix < Path.size() && Name == Path[MatchedPrefix])
      ++MatchedPrefix;
  }
  return Stack.empty() ? std::optional(Out) : std::nullopt;
}

std::vector<std::u16string>
efc::baselines::splitPath(const std::string &Query) {
  std::vector<std::u16string> Out;
  std::u16string Cur;
  for (size_t I = 1; I <= Query.size(); ++I) {
    if (I == Query.size() || Query[I] == '/') {
      if (!Cur.empty())
        Out.push_back(Cur);
      Cur.clear();
    } else {
      Cur.push_back(char16_t(Query[I]));
    }
  }
  return Out;
}
