//===- bench/baselines/RegexLib.cpp ---------------------------------------===//

#include "bench/baselines/RegexLib.h"

#include "frontends/regex/Automata.h"

using namespace efc;
using namespace efc::baselines;

std::optional<InterpretedRegex>
InterpretedRegex::compile(const std::string &Pattern) {
  auto Parsed = fe::parseRegex(Pattern);
  if (!Parsed)
    return std::nullopt;
  fe::Nfa N = fe::buildNfa(Parsed->Root);
  auto D = fe::determinize(N);
  if (!D)
    return std::nullopt;

  InterpretedRegex R;
  R.Start = D->Start;
  for (const fe::Dfa::State &S : D->States) {
    State St;
    St.Accepting = S.Accepting;
    St.Cap = S.Cap;
    for (const fe::Dfa::Transition &T : S.Out) {
      Transition Tr;
      for (const fe::CharRange &CR : T.Cls.ranges())
        Tr.Ranges.push_back({CR.Lo, CR.Hi});
      Tr.Target = T.Target;
      Tr.Tag = T.Tag;
      St.Out.push_back(std::move(Tr));
    }
    R.States.push_back(std::move(St));
  }
  return R;
}

std::optional<std::vector<std::u16string>>
InterpretedRegex::findAll(std::u16string_view Input) const {
  std::vector<std::u16string> Captures;
  unsigned Cur = Start;
  int ActiveCap = fe::NoCapture;
  std::u16string Pending;

  for (char16_t C : Input) {
    const State &St = States[Cur];
    const Transition *Taken = nullptr;
    for (const Transition &T : St.Out) {
      for (auto [Lo, Hi] : T.Ranges) {
        if (C >= Lo && C <= Hi) {
          Taken = &T;
          break;
        }
        if (C < Lo)
          break;
      }
      if (Taken)
        break;
    }
    if (!Taken)
      return std::nullopt;
    if (Taken->Tag != ActiveCap) {
      if (ActiveCap != fe::NoCapture) {
        Captures.push_back(Pending);
        Pending.clear();
      }
      ActiveCap = Taken->Tag;
    }
    if (Taken->Tag != fe::NoCapture)
      Pending.push_back(C);
    Cur = Taken->Target;
  }
  if (!States[Cur].Accepting)
    return std::nullopt;
  if (ActiveCap != fe::NoCapture)
    Captures.push_back(Pending);
  return Captures;
}
