//===- bench/baselines/XmlLib.h - DOM and streaming XPath -------*- C++ -*-===//
///
/// \file
/// Two general-purpose XML query baselines, standing in for the paper's
/// XmlDocument (DOM) and XPathReader (streaming) comparisons in Figure 10:
///
///  * MiniDom — parses the whole document into a node tree, then walks the
///    tree evaluating `/a/b/c`, collecting matched elements' direct text.
///  * streamingXPath — one pass with an explicit open-element name stack
///    and string comparisons per tag (no per-query code generation).
///
/// Both operate on UTF-16 text (decode counted by the caller).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_BASELINES_XMLLIB_H
#define EFC_BENCH_BASELINES_XMLLIB_H

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace efc::baselines {

/// A DOM node.
struct XmlNode {
  std::u16string Tag;
  std::u16string Text; ///< direct text content (children's text excluded)
  std::vector<std::unique_ptr<XmlNode>> Children;
};

/// Parses the document; nullopt on malformed input (same subset as the
/// XPath frontend).
std::optional<std::unique_ptr<XmlNode>> parseXmlDom(std::u16string_view Doc);

/// Evaluates an absolute path query over a DOM, returning matched
/// elements' direct text in document order.
std::vector<std::u16string> domQuery(const XmlNode &Root,
                                     const std::vector<std::u16string> &Path);

/// Single-pass streaming evaluation of the same query.
std::optional<std::vector<std::u16string>>
streamingXPath(std::u16string_view Doc,
               const std::vector<std::u16string> &Path);

/// Splits "/a/b/c" into path components (UTF-16).
std::vector<std::u16string> splitPath(const std::string &Query);

} // namespace efc::baselines

#endif // EFC_BENCH_BASELINES_XMLLIB_H
