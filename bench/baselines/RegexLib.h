//===- bench/baselines/RegexLib.h - Interpreted regex baseline --*- C++ -*-===//
///
/// \file
/// A general-purpose interpreted regex engine with capture extraction —
/// the role .NET's Regex library plays in the paper's hand-written
/// baselines: the pattern is compiled once to a DFA, matching interprets
/// transition tables per character, and captured substrings are
/// *materialized* before downstream processing.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_BASELINES_REGEXLIB_H
#define EFC_BENCH_BASELINES_REGEXLIB_H

#include <optional>
#include <string>
#include <vector>

namespace efc::baselines {

/// Compiled interpreted regex.
class InterpretedRegex {
public:
  /// Compiles \p Pattern (same syntax as the regex frontend); nullopt on
  /// parse/ambiguity errors.
  static std::optional<InterpretedRegex> compile(const std::string &Pattern);

  /// Matches the whole input; returns all captured substrings in match
  /// order, or nullopt when the input does not match.
  std::optional<std::vector<std::u16string>>
  findAll(std::u16string_view Input) const;

private:
  struct Transition {
    std::vector<std::pair<uint16_t, uint16_t>> Ranges; // sorted, inclusive
    unsigned Target;
    int Tag;
  };
  struct State {
    std::vector<Transition> Out;
    bool Accepting;
    int Cap;
  };
  std::vector<State> States;
  unsigned Start = 0;
};

} // namespace efc::baselines

#endif // EFC_BENCH_BASELINES_REGEXLIB_H
