//===- bench/ablate_solver.cpp - Solver design-choice ablations -----------===//
//
// Ablates the decision-procedure optimizations DESIGN.md calls out:
//   * interval presolve on/off
//   * concrete-evaluation witness guessing on/off
//   * checkWith result caching on/off
//
// Metric: wall time and check breakdown for a fixed fusion workload
// (Utf8Decode ⊗ ToInt and Rep ⊗ HtmlEncode plus RBBE on the latter).
//
//===----------------------------------------------------------------------===//

#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "support/Stopwatch.h"

#include <cstdio>

using namespace efc;

namespace {

struct Config {
  const char *Name;
  bool Presolve;
  bool Guess;
  bool Cache;
};

void runConfig(const Config &C) {
  TermContext Ctx;
  Solver S(Ctx);
  S.setPresolveEnabled(C.Presolve);
  S.setGuessingEnabled(C.Guess);
  S.setCacheEnabled(C.Cache);

  Stopwatch W;
  Bst Dec = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  Bst F1 = fuse(Dec, ToInt, S);
  Bst C1 = eliminateUnreachableBranches(F1, S);

  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);
  Bst F2 = fuse(Rep, Html, S);
  Bst C2 = eliminateUnreachableBranches(F2, S);
  double Secs = W.seconds();

  const Solver::Stats &St = S.stats();
  printf("%-28s %7.2fs  checks=%-6llu fastU=%-5llu fastS=%-5llu "
         "guess=%-5llu cache=%-5llu cdcl=%-5llu budget=%llu\n",
         C.Name, Secs, (unsigned long long)St.Checks,
         (unsigned long long)St.FastUnsat, (unsigned long long)St.FastSat,
         (unsigned long long)St.GuessSat, (unsigned long long)St.CacheHits,
         (unsigned long long)St.SatCalls,
         (unsigned long long)St.BudgetExceeded);
  // Sanity: optimized configurations must produce the same structures.
  printf("%-28s          states=%u+%u branches=%u+%u\n", "",
         C1.numStates(), C2.numStates(), C1.countBranches(),
         C2.countBranches());
}

} // namespace

int main() {
  printf("Solver ablation on fusion + RBBE of Utf8Decode x ToInt and "
         "Rep x HtmlEncode:\n\n");
  Config Configs[] = {
      {"all-on", true, true, true},
      {"no-presolve", false, true, true},
      {"no-guessing", true, false, true},
      {"no-cache", true, true, false},
      {"cdcl-only", false, false, false},
  };
  for (const Config &C : Configs)
    runConfig(C);
  return 0;
}
