//===- bench/common/BenchEnv.cpp ------------------------------------------===//

#include "bench/common/BenchEnv.h"

#include "vm/Simd.h"

#include <cstdio>
#include <cstdlib>
#include <thread>

std::string efc::bench::gitRevision() {
  if (const char *E = std::getenv("EFC_GIT_REV"))
    return E;
  std::string Rev = "unknown";
  if (FILE *P = popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char Buf[64] = {0};
    if (fgets(Buf, sizeof(Buf), P)) {
      Rev = Buf;
      while (!Rev.empty() && (Rev.back() == '\n' || Rev.back() == '\r'))
        Rev.pop_back();
    }
    pclose(P);
    if (Rev.empty())
      Rev = "unknown";
  }
  return Rev;
}

uint64_t efc::bench::hardwareNproc() {
  return std::thread::hardware_concurrency();
}

std::string efc::bench::detectedIsaName() {
  return efc::simd::levelName(efc::simd::detectedLevel());
}
