//===- bench/common/ServeJson.cpp -----------------------------------------===//

#include "bench/common/ServeJson.h"

#include "bench/common/BenchEnv.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

using namespace efc::bench;

namespace {

// Line-oriented extraction, mirroring ThroughputJson.cpp: this merger
// is the only reader of the format it writes.
std::string extractString(const std::string &Line, const std::string &Key) {
  std::string Pat = "\"" + Key + "\": \"";
  size_t At = Line.find(Pat);
  if (At == std::string::npos)
    return "";
  At += Pat.size();
  size_t End = Line.find('"', At);
  return End == std::string::npos ? "" : Line.substr(At, End - At);
}

double extractNumber(const std::string &Line, const std::string &Key) {
  std::string Pat = "\"" + Key + "\": ";
  size_t At = Line.find(Pat);
  if (At == std::string::npos)
    return 0;
  return atof(Line.c_str() + At + Pat.size());
}

} // namespace

void efc::bench::writeServeJson(std::string Path, const ServeRow &Fresh) {
  if (Path.empty()) {
    Path = "BENCH_serve.json";
    if (const char *E = std::getenv("EFC_BENCH_SERVE_JSON"))
      Path = E;
  }

  ServeRow N = Fresh;
  N.GitRev = gitRevision();
  N.Nproc = hardwareNproc();
  N.Isa = detectedIsaName();

  std::vector<ServeRow> Rows;
  {
    std::ifstream F(Path);
    std::string Line;
    while (std::getline(F, Line)) {
      std::string Sc = extractString(Line, "scenario");
      if (Sc.empty())
        continue;
      ServeRow R;
      R.Scenario = Sc;
      R.Sessions = uint64_t(extractNumber(Line, "sessions"));
      R.Shards = uint64_t(extractNumber(Line, "shards"));
      R.Conns = uint64_t(extractNumber(Line, "conns"));
      R.Chunk = uint64_t(extractNumber(Line, "chunk"));
      R.Frames = uint64_t(extractNumber(Line, "frames"));
      R.P50Ms = extractNumber(Line, "p50_ms");
      R.P99Ms = extractNumber(Line, "p99_ms");
      R.MbPerS = extractNumber(Line, "mb_per_s");
      R.GitRev = extractString(Line, "git_rev");
      R.Nproc = uint64_t(extractNumber(Line, "nproc"));
      R.Isa = extractString(Line, "isa");
      Rows.push_back(std::move(R));
    }
  }

  bool Found = false;
  for (ServeRow &O : Rows)
    if (O.Scenario == N.Scenario && O.Shards == N.Shards) {
      O = N;
      Found = true;
      break;
    }
  if (!Found)
    Rows.push_back(N);

  std::ostringstream S;
  S << "{\n  \"git_rev\": \"" << N.GitRev
    << "\",\n  \"unit\": \"ms / MB/s\",\n  \"results\": [";
  for (size_t I = 0; I < Rows.size(); ++I) {
    const ServeRow &R = Rows[I];
    char Buf[512];
    snprintf(Buf, sizeof(Buf),
             "\n    {\"scenario\": \"%s\", \"sessions\": %llu, "
             "\"shards\": %llu, \"conns\": %llu, \"chunk\": %llu, "
             "\"frames\": %llu, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
             "\"mb_per_s\": %.2f, \"git_rev\": \"%s\", \"nproc\": %llu, "
             "\"isa\": \"%s\"}%s",
             R.Scenario.c_str(), (unsigned long long)R.Sessions,
             (unsigned long long)R.Shards, (unsigned long long)R.Conns,
             (unsigned long long)R.Chunk, (unsigned long long)R.Frames,
             R.P50Ms, R.P99Ms, R.MbPerS, R.GitRev.c_str(),
             (unsigned long long)R.Nproc, R.Isa.c_str(),
             I + 1 < Rows.size() ? "," : "");
    S << Buf;
  }
  S << "\n  ]\n}\n";

  std::ofstream F(Path, std::ios::trunc);
  if (!F) {
    fprintf(stderr, "serve-json: cannot write %s\n", Path.c_str());
    return;
  }
  F << S.str();
  fprintf(stderr, "serve-json: %zu row(s) -> %s\n", Rows.size(),
          Path.c_str());
}
