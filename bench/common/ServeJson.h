//===- bench/common/ServeJson.h - BENCH_serve.json writer -------*- C++ -*-===//
///
/// \file
/// Merge-on-write JSON rows for the serving-load benchmark
/// (bench/serve_load).  Same shape and discipline as
/// BENCH_throughput.json: rows are keyed (here by scenario + shard
/// count), refreshed rows replace their key in place, and every row is
/// stamped with the measuring git revision / core count / SIMD level so
/// the ci.sh gate can skip rows recorded on different hardware.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_COMMON_SERVEJSON_H
#define EFC_BENCH_COMMON_SERVEJSON_H

#include <cstdint>
#include <string>

namespace efc::bench {

/// One serving-load measurement.  GitRev/Nproc/Isa are stamped by
/// writeServeJson; callers fill the rest.
struct ServeRow {
  std::string Scenario;
  uint64_t Sessions = 0; ///< concurrent sessions held open
  uint64_t Shards = 0;
  uint64_t Conns = 0;   ///< client connections multiplexing them
  uint64_t Chunk = 0;   ///< feed-frame payload bytes
  uint64_t Frames = 0;  ///< total feed frames measured
  double P50Ms = 0;     ///< feed round-trip latency under load
  double P99Ms = 0;
  double MbPerS = 0; ///< aggregate feed payload throughput
  std::string GitRev;
  uint64_t Nproc = 0;
  std::string Isa;
};

/// Merges \p Fresh into the rows already in \p Path (match on
/// scenario + shards) and rewrites the file.  Path defaults to
/// BENCH_serve.json; the EFC_BENCH_SERVE_JSON environment variable
/// overrides it when \p Path is empty.
void writeServeJson(std::string Path, const ServeRow &Fresh);

} // namespace efc::bench

#endif // EFC_BENCH_COMMON_SERVEJSON_H
