//===- bench/common/BenchCommon.h - Shared benchmark plumbing ---*- C++ -*-===//
///
/// \file
/// Builds every evaluation pipeline of the paper (Figures 9, 10, 11, 13)
/// in all execution variants:
///
///  * Stages — the unfused per-stage BSTs compiled for the VM, run either
///    pull-style ("LINQ") or push-style ("Method call").
///  * Fused — the ⊗-fused, RBBE-cleaned BST compiled for the VM.
///
/// Hand-written baselines live in the individual benchmark binaries next
/// to the reference implementations (stdlib/Reference.h) and the
/// general-purpose XML/regex baseline engines (bench/baselines/).
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_COMMON_BENCHCOMMON_H
#define EFC_BENCH_COMMON_BENCHCOMMON_H

#include "bst/Bst.h"
#include "codegen/NativeCompile.h"
#include "fusion/Fusion.h"
#include "pipeline/PassManager.h"
#include "rbbe/Rbbe.h"
#include "vm/FastPath.h"
#include "vm/Pipeline.h"
#include "vm/Vm.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace efc::bench {

/// A pipeline prepared for benchmarking.
struct BuiltPipeline {
  std::string Name;
  std::shared_ptr<TermContext> Ctx; ///< owns the unfused stages' terms
  /// Owns the fused artifacts' terms: built via the shared pass pipeline
  /// (pipeline/PassManager.h), so on a per-pass cache hit the chain — and
  /// the Bst — are *adopted* from the cache rather than rebuilt, and may
  /// differ from Ctx.
  std::shared_ptr<pipeline::IrChain> Chain;

  std::vector<Bst> Stages;
  std::shared_ptr<const Bst> Fused; ///< fused + RBBE

  std::vector<CompiledTransducer> CompiledStages;
  std::shared_ptr<const CompiledTransducer> CompiledFused;
  /// Byte-class dispatch tables over CompiledFused (vm/FastPath.h).
  std::shared_ptr<const FastPathPlan> FastPlan;
  /// Generated C++ compiled by the host compiler and dlopen'd — the
  /// paper's deployment backend.  Absent when no compiler is available.
  std::optional<NativeTransducer> Native;

  // Compilation statistics (Figure 11).
  FusionStats FStats;
  RbbeStats RStats;
  std::vector<pipeline::PassRun> PassRuns; ///< one row per compile pass
  double TotalSeconds = 0; ///< fusion + RBBE + code generation

  std::vector<const CompiledTransducer *> stagePtrs() const {
    std::vector<const CompiledTransducer *> Ps;
    for (const CompiledTransducer &T : CompiledStages)
      Ps.push_back(&T);
    return Ps;
  }
};

/// Builds Name from its stage factory; fuses, cleans, compiles.
BuiltPipeline buildPipeline(const std::string &Name,
                            std::vector<Bst> Stages, TermContext &Ctx,
                            std::shared_ptr<TermContext> Owner);

// Figure 9 pipelines.
BuiltPipeline makeBase64AvgPipeline();
BuiltPipeline makeCsvMaxPipeline();
BuiltPipeline makeBase64DeltaPipeline();
BuiltPipeline makeUtf8LinesPipeline();
BuiltPipeline makeChsiPipeline(const std::string &Which); // cancer|births|deaths
BuiltPipeline makeSboPipeline(const std::string &Which);  // employees|receipts|payroll
BuiltPipeline makeCcIdPipeline();

// Figure 10 pipelines.
BuiltPipeline makeTpcDiSqlPipeline();
BuiltPipeline makePirProteinsPipeline();
BuiltPipeline makeDblpOldestPipeline();
BuiltPipeline makeMondialPipeline();

// Figure 13 pipeline (Rep ⊗ HtmlEncode).
BuiltPipeline makeHtmlEncodePipeline();

/// The §1 pipeline (Utf8Decode ⊗ ToInt): the RBBE showcase.
BuiltPipeline makeUtf8ToIntPipeline();

/// Raw input conversions for the VM.
std::vector<uint64_t> rawOfBytes(const std::string &Bytes);
std::vector<uint64_t> rawOfChars(const std::u16string &Chars);

/// Benchmark input scale in bytes: EFC_BENCH_MB env var (default 2 MB).
size_t benchBytes();

} // namespace efc::bench

#endif // EFC_BENCH_COMMON_BENCHCOMMON_H
