//===- bench/common/BenchEnv.h - Measurement-environment stamps -*- C++ -*-===//
///
/// \file
/// The stamps every benchmark JSON row carries so merged files stay
/// attributable: the measuring git revision, logical core count, and
/// detected SIMD level.  Shared by the throughput writer
/// (ThroughputJson.cpp) and the serving-load writer (ServeJson.cpp) so
/// the ci.sh hardware-mismatch skip logic sees one consistent encoding.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_COMMON_BENCHENV_H
#define EFC_BENCH_COMMON_BENCHENV_H

#include <cstdint>
#include <string>

namespace efc::bench {

/// Short git revision of the working tree (EFC_GIT_REV overrides;
/// "unknown" when not in a repository).
std::string gitRevision();

/// Logical core count of this machine.
uint64_t hardwareNproc();

/// Detected SIMD level name (vm/Simd.h), e.g. "avx2" or "scalar".
std::string detectedIsaName();

} // namespace efc::bench

#endif // EFC_BENCH_COMMON_BENCHENV_H
