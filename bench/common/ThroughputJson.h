//===- bench/common/ThroughputJson.h - Machine-readable bench out -*-C++-*-===//
///
/// \file
/// Records benchmark throughput in a machine-readable file so the perf
/// trajectory is tracked across PRs.  Benchmarks named "Pipeline/Backend"
/// that call SetBytesProcessed become rows of
///
///   {"pipeline": ..., "backend": ..., "mb_per_s": ...,
///    "input_bytes": ..., "iterations": ...,
///    "git_rev": ..., "nproc": ..., "isa": ...}
///
/// in BENCH_throughput.json (path override: EFC_BENCH_JSON; set it to ""
/// to disable recording).  input_bytes is the per-iteration input size
/// and iterations the measured repeat count, so a number in the file can
/// be judged (cache-resident 1 MB vs bandwidth-bound 4 MB runs differ by
/// 2-4x) and reproduced (EFC_BENCH_MB).  The writer merges by (pipeline,
/// backend) — fig9 and fig13 update their own rows without clobbering
/// each other — and stamps the measuring git revision plus the measuring
/// hardware (logical core count, detected SIMD level) on every row (the
/// header git_rev is just the last writer), so a merged file's numbers
/// stay attributable after partial refreshes, and the ci.sh throughput
/// gate can skip rows recorded on different hardware instead of flagging
/// phantom regressions.  MB = 10^6 bytes.
///
//===----------------------------------------------------------------------===//

#ifndef EFC_BENCH_COMMON_THROUGHPUTJSON_H
#define EFC_BENCH_COMMON_THROUGHPUTJSON_H

#include <string>

namespace efc::bench {

/// Drop-in benchmark main: Initialize, RunSpecifiedBenchmarks through a
/// console reporter that also captures bytes_per_second, merge the rows
/// into the JSON file, Shutdown.  Returns the process exit code.
int benchMainWithThroughputJson(int argc, char **argv);

/// True when EFC_BENCH_PIPELINES is unset/empty or its comma-separated
/// list contains \p Name.  Lets ci.sh register (and thus fuse) only the
/// pipelines its smoke run needs.
bool pipelineEnabled(const std::string &Name);

} // namespace efc::bench

#endif // EFC_BENCH_COMMON_THROUGHPUTJSON_H
