//===- bench/common/BenchCommon.cpp ---------------------------------------===//

#include "bench/common/BenchCommon.h"

#include "frontends/comprehension/Comprehension.h"
#include "frontends/regex/RegexFrontend.h"
#include "frontends/xpath/XPathFrontend.h"
#include "stdlib/Transducers.h"
#include "support/EnvParse.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstdlib>

using namespace efc;
using namespace efc::bench;

size_t efc::bench::benchBytes() {
  return size_t(env::u64("EFC_BENCH_MB", 2, 1, 1 << 20)) * 1024 * 1024;
}

std::vector<uint64_t> efc::bench::rawOfBytes(const std::string &Bytes) {
  std::vector<uint64_t> Out;
  Out.reserve(Bytes.size());
  for (unsigned char C : Bytes)
    Out.push_back(C);
  return Out;
}

std::vector<uint64_t> efc::bench::rawOfChars(const std::u16string &Chars) {
  std::vector<uint64_t> Out;
  Out.reserve(Chars.size());
  for (char16_t C : Chars)
    Out.push_back(uint64_t(C));
  return Out;
}

BuiltPipeline efc::bench::buildPipeline(const std::string &Name,
                                        std::vector<Bst> Stages,
                                        TermContext &Ctx,
                                        std::shared_ptr<TermContext> Owner) {
  BuiltPipeline P;
  P.Name = Name;
  P.Ctx = std::move(Owner);
  (void)Ctx; // stages were assembled in it; P.Ctx keeps it alive
  Stopwatch Total;

  // The shared pass pipeline, in cacheable mode: re-building the same
  // figure pipeline (or respec'ing only a downstream knob) in one
  // process adopts the cached upstream artifacts.
  pipeline::PassContext PC;
  PC.Chain = std::make_shared<pipeline::IrChain>(P.Ctx);
  for (const Bst &St : Stages)
    PC.Stages.push_back(&St);

  pipeline::PipelineOptions PO;
  PO.Rbbe.MaxSolverChecks = 1200;
  PO.Rbbe.MaxPredicateNodes = 8000;
  PO.Rbbe.ConflictBudget = 0; // cheap procedures only: see DESIGN.md
  // EFC_FASTPATH_ACCEL=0 disables run kernels, EFC_FASTPATH_WIDE=0 the
  // wide-domain tables, EFC_FASTPATH_SPEC=0 two-state speculation — the
  // A/B switches for the EXPERIMENTS.md before/after tables.
  PO.FastPath = FastPathOptions::fromEnv();

  std::string PErr;
  if (!pipeline::PassManager({"fuse", "rbbe", "vm_compile", "fastpath_plan"})
           .run(PC, PO, &PErr)) {
    fprintf(stderr, "bench: pass pipeline failed for %s: %s\n",
            Name.c_str(), PErr.c_str());
    abort();
  }
  P.Chain = PC.Chain;
  P.Fused = PC.Ir;
  P.CompiledFused = PC.Vm;
  P.FastPlan = PC.Fast;
  P.FStats = PC.FStats;
  P.RStats = PC.RStats;
  P.PassRuns = std::move(PC.Runs);

  for (Bst &St : Stages) {
    auto C = CompiledTransducer::compile(St);
    assert(C && "stage must have scalar element types");
    P.CompiledStages.push_back(std::move(*C));
  }

  std::string Tag = Name;
  for (char &C : Tag)
    if (!isalnum((unsigned char)C))
      C = '_';
  {
    // Codegen may intern terms in the (possibly shared) chain context.
    std::lock_guard<std::mutex> ChainLock(P.Chain->Mu);
    if (auto N = NativeTransducer::compile(*P.Fused, Tag))
      P.Native.emplace(std::move(*N));
  }

  P.Stages = std::move(Stages);
  P.TotalSeconds = Total.seconds();
  return P;
}

namespace {

std::shared_ptr<TermContext> newCtx() {
  return std::make_shared<TermContext>();
}

/// Capture transducer counting the match's length (for CSV-max).
Bst makeLengthCounter(TermContext &Ctx) {
  Bst A(Ctx, Ctx.bv(16), Ctx.bv(32), Ctx.bv(32), 1, 0, Value::bv(32, 0));
  A.setDelta(0, Rule::base({}, 0,
                           Ctx.mkAdd(A.regVar(), Ctx.bvConst(32, 1))));
  A.setFinalizer(0, Rule::base({A.regVar()}, 0, Ctx.bvConst(32, 0)));
  return A;
}

/// Regex CSV pipeline: utf8 -> (extract IntColumn as capture) -> Agg ->
/// decimal -> utf8.
BuiltPipeline csvPipeline(const std::string &Name, unsigned IntColumn,
                          const std::string &Agg, bool CaptureLength) {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));

  std::string Pattern = "(?:(?:[^,\\n]*,){" + std::to_string(IntColumn) +
                        "}(?<v>\\d+),[^\\n]*\\n)*";
  Bst Capture = CaptureLength ? makeLengthCounter(Ctx) : lib::makeToInt(Ctx);
  fe::RegexBstResult R = fe::buildRegexBst(Ctx, Pattern, {{"v", &Capture}});
  assert(R.Result.has_value() && "benchmark regex must compile");
  Stages.push_back(std::move(*R.Result));

  if (Agg == "max")
    Stages.push_back(lib::makeMax(Ctx));
  else if (Agg == "min")
    Stages.push_back(lib::makeMin(Ctx));
  else
    Stages.push_back(lib::makeAverage(Ctx));
  Stages.push_back(lib::makeIntToDecimal(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return buildPipeline(Name, std::move(Stages), Ctx, Owner);
}

/// XPath pipeline: utf8 -> XPath(query){content=ToInt} -> Agg -> format ->
/// utf8.
BuiltPipeline xpathPipeline(const std::string &Name,
                            const std::string &Query,
                            const std::string &Agg,
                            const std::string &WrapPrefix = "",
                            const std::string &WrapSuffix = "") {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Bst ToInt = lib::makeToInt(Ctx);
  fe::XPathBstResult R = fe::buildXPathBst(Ctx, Query, ToInt);
  assert(R.Result.has_value() && "benchmark query must compile");
  Stages.push_back(std::move(*R.Result));
  if (Agg == "max")
    Stages.push_back(lib::makeMax(Ctx));
  else if (Agg == "min")
    Stages.push_back(lib::makeMin(Ctx));
  else if (Agg == "avg")
    Stages.push_back(lib::makeAverage(Ctx));
  // "none": values flow straight to formatting.
  if (!WrapPrefix.empty() || !WrapSuffix.empty())
    Stages.push_back(lib::makeIntWrap(Ctx, WrapPrefix, WrapSuffix));
  else
    Stages.push_back(lib::makeIntToDecimalLines(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return buildPipeline(Name, std::move(Stages), Ctx, Owner);
}

} // namespace

BuiltPipeline efc::bench::makeBase64AvgPipeline() {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeBase64Decode(Ctx));
  Stages.push_back(lib::makeBytesToInt32(Ctx));
  {
    // Finite exploration (§5.1) migrates the ring-buffer position and the
    // `full` flag into control states, removing the per-element
    // position-selection ite chains.
    Solver ES(Ctx);
    Bst W = lib::makeWindowedAverage(Ctx, 10);
    Stages.push_back(fe::exploreFiniteRegisters(W, ES, {11}));
  }
  Stages.push_back(lib::makeInt32ToBytes(Ctx));
  Stages.push_back(lib::makeBase64Encode(Ctx));
  return buildPipeline("Base64-avg", std::move(Stages), Ctx, Owner);
}

BuiltPipeline efc::bench::makeCsvMaxPipeline() {
  // Max *length* of the third column's strings (paper's CSV-max); column
  // index 2, capture counts characters.  The pattern column accepts any
  // text, so the capture here is the generic token column.
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Bst Len = makeLengthCounter(Ctx);
  fe::RegexBstResult R = fe::buildRegexBst(
      Ctx, "(?:(?:[^,\\n]*,){2}(?<v>[^,\\n]+),[^\\n]*\\n)*",
      {{"v", &Len}});
  assert(R.Result.has_value());
  Stages.push_back(std::move(*R.Result));
  Stages.push_back(lib::makeMax(Ctx));
  Stages.push_back(lib::makeIntToDecimal(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return buildPipeline("CSV-max", std::move(Stages), Ctx, Owner);
}

BuiltPipeline efc::bench::makeBase64DeltaPipeline() {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeBase64Decode(Ctx));
  Stages.push_back(lib::makeBytesToInt32(Ctx));
  Stages.push_back(lib::makeDelta(Ctx));
  Stages.push_back(lib::makeIntToDecimalLines(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return buildPipeline("Base64-delta", std::move(Stages), Ctx, Owner);
}

BuiltPipeline efc::bench::makeUtf8LinesPipeline() {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode(Ctx));
  Stages.push_back(lib::makeLineCount(Ctx));
  Stages.push_back(lib::makeIntToDecimal(Ctx));
  Stages.push_back(lib::makeUtf8Encode(Ctx));
  return buildPipeline("UTF8-lines", std::move(Stages), Ctx, Owner);
}

BuiltPipeline efc::bench::makeChsiPipeline(const std::string &Which) {
  // cancer: average col 7; births: min col 5; deaths: max col 3.
  if (Which == "cancer")
    return csvPipeline("CHSI-cancer", 7, "avg", false);
  if (Which == "births")
    return csvPipeline("CHSI-births", 5, "min", false);
  return csvPipeline("CHSI-deaths", 3, "max", false);
}

BuiltPipeline efc::bench::makeSboPipeline(const std::string &Which) {
  if (Which == "employees")
    return csvPipeline("SBO-employees", 5, "max", false);
  if (Which == "receipts")
    return csvPipeline("SBO-receipts", 6, "min", false);
  return csvPipeline("SBO-payroll", 7, "avg", false);
}

BuiltPipeline efc::bench::makeCcIdPipeline() {
  return csvPipeline("CC-id", 0, "max", false);
}

BuiltPipeline efc::bench::makeTpcDiSqlPipeline() {
  return xpathPipeline("TPC-DI-SQL", "/customers/customer/account", "none",
                       "INSERT INTO account VALUES (", ");\n");
}

BuiltPipeline efc::bench::makePirProteinsPipeline() {
  return xpathPipeline("PIR-proteins", "/proteins/protein/length", "avg");
}

BuiltPipeline efc::bench::makeDblpOldestPipeline() {
  return xpathPipeline("DBLP-oldest", "/dblp/article/year", "min");
}

BuiltPipeline efc::bench::makeMondialPipeline() {
  return xpathPipeline("MONDIAL", "/mondial/country/city/population",
                       "max");
}

BuiltPipeline efc::bench::makeUtf8ToIntPipeline() {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Stages.push_back(lib::makeToInt(Ctx));
  return buildPipeline("UTF8-toint", std::move(Stages), Ctx, Owner);
}

BuiltPipeline efc::bench::makeHtmlEncodePipeline() {
  auto Owner = newCtx();
  TermContext &Ctx = *Owner;
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeRep(Ctx));
  Stages.push_back(lib::makeHtmlEncode(Ctx));
  return buildPipeline("Rep+HtmlEncode", std::move(Stages), Ctx, Owner);
}
