//===- bench/common/ThroughputJson.cpp ------------------------------------===//

#include "bench/common/ThroughputJson.h"

#include "bench/common/BenchEnv.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

using namespace efc::bench;

namespace {

struct Row {
  std::string Pipeline;
  std::string Backend;
  double MbPerS = 0;
  uint64_t InputBytes = 0; // per-iteration input size
  uint64_t Iterations = 0;
  std::string GitRev; // revision that measured THIS row (merged files
                      // mix rows from different HEADs)
  // The hardware that measured the row: logical core count and detected
  // SIMD level.  A merged file can mix rows from different machines;
  // the ci.sh throughput gate only compares rows whose hardware matches
  // the machine it runs on.
  uint64_t Nproc = 0;
  std::string Isa;
};

/// Console reporter that additionally captures each run's throughput.
class RecordingReporter : public benchmark::ConsoleReporter {
public:
  std::vector<Row> Rows;

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type != Run::RT_Iteration || R.error_occurred)
        continue;
      auto It = R.counters.find("bytes_per_second");
      if (It == R.counters.end())
        continue;
      std::string Name = R.benchmark_name();
      // UseRealTime() (the multi-threaded benchmarks) suffixes the name.
      if (size_t RT = Name.find("/real_time"); RT != std::string::npos)
        Name.erase(RT);
      size_t Slash = Name.find('/');
      if (Slash == std::string::npos)
        continue;
      // SetBytesProcessed records bytes * iterations; recover the
      // per-iteration input size from the counter and the measured time.
      uint64_t InputBytes =
          R.iterations
              ? uint64_t(double(It->second) * R.real_accumulated_time /
                             double(R.iterations) +
                         0.5)
              : 0;
      // GitRev / Nproc / Isa are stamped in mergeAndWrite.
      Rows.push_back({Name.substr(0, Slash), Name.substr(Slash + 1),
                      double(It->second) / 1e6, InputBytes,
                      uint64_t(R.iterations), "", 0, ""});
    }
    ConsoleReporter::ReportRuns(Runs);
  }
};

/// Extracts `"Key": "..."` / `"Key": <number>` from one result line of a
/// file this writer produced (the only reader of the format is this
/// merger, so line-oriented extraction is enough).
std::string extractString(const std::string &Line, const std::string &Key) {
  std::string Pat = "\"" + Key + "\": \"";
  size_t At = Line.find(Pat);
  if (At == std::string::npos)
    return "";
  At += Pat.size();
  size_t End = Line.find('"', At);
  return End == std::string::npos ? "" : Line.substr(At, End - At);
}

double extractNumber(const std::string &Line, const std::string &Key) {
  std::string Pat = "\"" + Key + "\": ";
  size_t At = Line.find(Pat);
  if (At == std::string::npos)
    return 0;
  return atof(Line.c_str() + At + Pat.size());
}

void mergeAndWrite(const std::string &Path, std::vector<Row> Fresh) {
  const std::string Rev = gitRevision();
  const uint64_t Nproc = hardwareNproc();
  const std::string Isa = detectedIsaName();
  for (Row &N : Fresh) {
    N.GitRev = Rev;
    N.Nproc = Nproc;
    N.Isa = Isa;
  }

  std::vector<Row> Rows;
  {
    std::ifstream F(Path);
    std::string Line;
    std::string FileRev = "unknown"; // header rev: fallback for rows
                                     // written before per-row stamping
    while (std::getline(F, Line)) {
      std::string P = extractString(Line, "pipeline");
      std::string B = extractString(Line, "backend");
      if (P.empty() && B.empty()) {
        std::string R = extractString(Line, "git_rev");
        if (!R.empty())
          FileRev = R;
        continue;
      }
      if (!P.empty() && !B.empty()) {
        std::string R = extractString(Line, "git_rev");
        Rows.push_back({P, B, extractNumber(Line, "mb_per_s"),
                        uint64_t(extractNumber(Line, "input_bytes")),
                        uint64_t(extractNumber(Line, "iterations")),
                        R.empty() ? FileRev : R,
                        uint64_t(extractNumber(Line, "nproc")),
                        extractString(Line, "isa")});
      }
    }
  }
  for (const Row &N : Fresh) {
    bool Found = false;
    for (Row &O : Rows)
      if (O.Pipeline == N.Pipeline && O.Backend == N.Backend) {
        O = N;
        Found = true;
        break;
      }
    if (!Found)
      Rows.push_back(N);
  }

  // The header rev is the last writer; each row carries the revision
  // that actually measured it, so partial refreshes (fig9 today, fig13
  // last week) stay attributable.
  std::ostringstream S;
  S << "{\n  \"git_rev\": \"" << Rev << "\",\n  \"unit\": \"MB/s\","
    << "\n  \"results\": [";
  for (size_t I = 0; I < Rows.size(); ++I) {
    char Buf[448];
    snprintf(Buf, sizeof(Buf),
             "\n    {\"pipeline\": \"%s\", \"backend\": \"%s\", "
             "\"mb_per_s\": %.2f, \"input_bytes\": %llu, "
             "\"iterations\": %llu, \"git_rev\": \"%s\", "
             "\"nproc\": %llu, \"isa\": \"%s\"}%s",
             Rows[I].Pipeline.c_str(), Rows[I].Backend.c_str(),
             Rows[I].MbPerS, (unsigned long long)Rows[I].InputBytes,
             (unsigned long long)Rows[I].Iterations,
             Rows[I].GitRev.c_str(), (unsigned long long)Rows[I].Nproc,
             Rows[I].Isa.c_str(), I + 1 < Rows.size() ? "," : "");
    S << Buf;
  }
  S << "\n  ]\n}\n";

  std::ofstream F(Path, std::ios::trunc);
  if (!F) {
    fprintf(stderr, "throughput-json: cannot write %s\n", Path.c_str());
    return;
  }
  F << S.str();
  fprintf(stderr, "throughput-json: %zu row(s) -> %s\n", Rows.size(),
          Path.c_str());
}

} // namespace

bool efc::bench::pipelineEnabled(const std::string &Name) {
  const char *E = std::getenv("EFC_BENCH_PIPELINES");
  if (!E || !*E)
    return true;
  std::string List = E;
  size_t Pos = 0;
  while (Pos <= List.size()) {
    size_t Comma = List.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = List.size();
    if (List.compare(Pos, Comma - Pos, Name) == 0)
      return true;
    Pos = Comma + 1;
  }
  return false;
}

int efc::bench::benchMainWithThroughputJson(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  RecordingReporter Rep;
  benchmark::RunSpecifiedBenchmarks(&Rep);
  benchmark::Shutdown();

  std::string Path = "BENCH_throughput.json";
  if (const char *E = std::getenv("EFC_BENCH_JSON"))
    Path = E;
  if (!Path.empty() && !Rep.Rows.empty())
    mergeAndWrite(Path, Rep.Rows);
  return 0;
}
