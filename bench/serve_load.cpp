//===- bench/serve_load.cpp - 10k-session serving-load benchmark ----------===//
///
/// \file
/// Load generator for the sharded epoll server: holds --sessions
/// streaming sessions open *concurrently* over --conns multiplexed
/// client connections against an in-process Server on a temp Unix
/// socket, then drives them through three phases — open-all,
/// interleaved windowed feeds, finish-all — with a single-threaded
/// nonblocking poll() client.  Every feed reply's round-trip latency is
/// recorded (p50/p99 under load, aggregate feed MB/s) and every byte of
/// server output is checked against a sequential StreamSession oracle
/// fed the identical chunk boundaries: any dropped, duplicated or
/// misrouted frame fails the run (exit 1), so the numbers can only come
/// from a correct run.
///
/// Results merge into BENCH_serve.json (same git_rev/nproc/isa stamping
/// and hardware-mismatch gate discipline as BENCH_throughput.json).
///
/// Defaults model the acceptance scenario: 10 000 sessions x 4 KB over
/// 200 connections on one shard.  EFC_SERVE_SESSIONS overrides the
/// default session count (the ci.sh smoke uses a smaller figure);
/// --shards measures kernel-balanced SO_REUSEPORT scaling on multi-core
/// hosts (meaningless on 1 core — see EXPERIMENTS.md).
///
//===----------------------------------------------------------------------===//

#include "bench/common/ServeJson.h"
#include "runtime/NetBuffers.h"
#include "runtime/PipelineCache.h"
#include "runtime/Server.h"
#include "runtime/StreamSession.h"
#include "support/EnvParse.h"
#include "support/Stopwatch.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fcntl.h>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <poll.h>
#include <string>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#include <vector>

using namespace efc;
using namespace efc::runtime;
using Clock = std::chrono::steady_clock;

namespace {

// Echo pipeline: every digit run comes back as one line, so the reply
// stream is input-sized and byte-comparable against the oracle.  The
// pattern is anchored over the whole stream (regex-frontend semantics),
// so it must absorb newlines — and a digit run cut at a chunk boundary
// simply continues in the next frame.
const char *EchoSpec = "frontend=regex\n"
                       "pattern=(?:(?<v>\\d+)|\\n)*\n"
                       "agg=none\n"
                       "format=lines\n";

struct Config {
  uint64_t Sessions = 10000;
  unsigned Conns = 200;
  unsigned Shards = 1;
  size_t Chunk = 512;
  size_t BytesPerSession = 4096;
  unsigned Window = 32; ///< max in-flight requests per connection
  uint64_t Seed = 0x5e7f10ad;
  double TimeoutS = 300;
  std::string Backend = "fastpath";
  std::string Scenario = "serve_10k";
  std::string JsonPath; ///< empty: BENCH_serve.json / EFC_BENCH_SERVE_JSON
  bool WriteJson = true;
};

std::string sessionName(uint32_t Id) { return "s" + std::to_string(Id); }

/// Deterministic payload of frame \p FrameIdx of session \p SessId:
/// newline-separated decimal rows, truncated to exactly Chunk bytes (a
/// cut row simply continues into the next frame — the oracle sees the
/// identical byte stream, so equality is unaffected).
std::string framePayload(const Config &C, uint32_t SessId, uint32_t FrameIdx) {
  SplitMix64 R(C.Seed ^ (uint64_t(SessId) << 20) ^ (uint64_t(FrameIdx) + 1));
  std::string P;
  P.reserve(C.Chunk + 24);
  while (P.size() < C.Chunk) {
    P += std::to_string(R.next() % 100000000);
    P += '\n';
  }
  P.resize(C.Chunk);
  return P;
}

std::string wireBytes(std::string_view Payload) {
  std::string W;
  W.reserve(4 + Payload.size());
  uint32_t N = uint32_t(Payload.size());
  W.push_back(char(N & 0xFF));
  W.push_back(char((N >> 8) & 0xFF));
  W.push_back(char((N >> 16) & 0xFF));
  W.push_back(char((N >> 24) & 0xFF));
  W.append(Payload.data(), Payload.size());
  return W;
}

struct Pending {
  uint32_t Sess;
  char Op;
  Clock::time_point SentAt;
};

struct ClientConn {
  int Fd = -1;
  std::string Out; ///< encoded-but-unsent wire bytes
  size_t OutOff = 0;
  InputSlab In;
  std::deque<Pending> Pend;
  std::vector<uint32_t> Members; ///< session ids served by this conn
  size_t Cursor = 0;             ///< next request index in this phase
  size_t Total = 0;              ///< requests this phase
  size_t Replies = 0;
};

enum class Phase { Open, Feed, Finish };

struct Load {
  Config Cfg;
  uint32_t FramesPerSession = 0;
  std::vector<ClientConn> Conns;
  std::vector<std::string> Actual; ///< per-session reply-body concat
  std::vector<double> FeedLatMs;
  std::string FirstError;

  bool fail(std::string Msg) {
    if (FirstError.empty())
      FirstError = std::move(Msg);
    return false;
  }

  /// Request #Idx of \p Ph on \p C.  Feeds interleave round-robin:
  /// round j sends frame j of every member session, so all sessions on
  /// the conn (and, conns being pumped together, in the whole run) are
  /// mid-stream at once — the 10k-concurrent shape, not 10k sequential.
  std::string makeRequest(Phase Ph, ClientConn &C, size_t Idx, Pending &P) {
    switch (Ph) {
    case Phase::Open:
      P = {C.Members[Idx], 'O', Clock::now()};
      return "O" + sessionName(P.Sess) + "\n" + Cfg.Backend + "\n" + EchoSpec;
    case Phase::Feed: {
      uint32_t Frame = uint32_t(Idx / C.Members.size());
      P = {C.Members[Idx % C.Members.size()], 'F', Clock::now()};
      return "F" + sessionName(P.Sess) + "\n" +
             framePayload(Cfg, P.Sess, Frame);
    }
    case Phase::Finish:
      P = {C.Members[Idx], 'E', Clock::now()};
      return "E" + sessionName(P.Sess);
    }
    return "";
  }

  /// Encodes requests up to the window and writes until EAGAIN.
  bool pumpWrite(Phase Ph, ClientConn &C) {
    for (;;) {
      while (C.Cursor < C.Total && C.Pend.size() < Cfg.Window &&
             C.Out.size() - C.OutOff < (256u << 10)) {
        Pending P;
        std::string Req = makeRequest(Ph, C, C.Cursor, P);
        // Timestamp at enqueue: the client-perceived latency includes
        // local queueing, as it would for a real caller.
        C.Out += wireBytes(Req);
        C.Pend.push_back(P);
        ++C.Cursor;
      }
      if (C.OutOff >= C.Out.size()) {
        C.Out.clear();
        C.OutOff = 0;
        return true; // nothing more encodable right now
      }
      ssize_t W = ::send(C.Fd, C.Out.data() + C.OutOff, C.Out.size() - C.OutOff,
                         MSG_NOSIGNAL);
      if (W < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return true;
        if (errno == EINTR)
          continue;
        return fail("send: " + std::string(strerror(errno)));
      }
      C.OutOff += size_t(W);
      if (C.OutOff >= C.Out.size()) {
        C.Out.clear();
        C.OutOff = 0;
        if (C.Cursor >= C.Total || C.Pend.size() >= Cfg.Window)
          return true;
      }
    }
  }

  bool handleReply(ClientConn &C, std::string_view F) {
    if (C.Pend.empty())
      return fail("unsolicited reply frame");
    Pending P = C.Pend.front();
    C.Pend.pop_front();
    ++C.Replies;
    if (F.empty())
      return fail("empty reply frame");
    char Status = F[0];
    size_t Nl = F.find('\n');
    std::string_view Name =
        F.substr(1, Nl == std::string_view::npos ? F.size() - 1 : Nl - 1);
    std::string_view Body =
        Nl == std::string_view::npos ? std::string_view() : F.substr(Nl + 1);
    if (Name != sessionName(P.Sess))
      return fail("reply routed to wrong request: expected " +
                  sessionName(P.Sess) + ", got '" + std::string(Name) + "'");
    if (Status != 'k')
      return fail("'" + std::string(1, P.Op) + "' on " + sessionName(P.Sess) +
                  " failed: " + std::string(Body));
    if (P.Op == 'F')
      FeedLatMs.push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - P.SentAt)
              .count());
    if (P.Op == 'F' || P.Op == 'E')
      Actual[P.Sess].append(Body.data(), Body.size());
    return true;
  }

  bool pumpRead(ClientConn &C) {
    for (;;) {
      C.In.reserveWritable(64u << 10);
      ssize_t R = ::recv(C.Fd, C.In.writePtr(), C.In.writable(), 0);
      if (R < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK)
          return true;
        if (errno == EINTR)
          continue;
        return fail("recv: " + std::string(strerror(errno)));
      }
      if (R == 0)
        return fail("server closed connection with " +
                    std::to_string(C.Pend.size()) + " replies outstanding");
      C.In.commit(size_t(R));
      for (;;) {
        std::string_view F;
        auto PR = C.In.nextFrame(64u << 20, &F);
        if (PR == InputSlab::ParseResult::NeedMore)
          break;
        if (PR != InputSlab::ParseResult::Frame)
          return fail("malformed reply framing from server");
        if (!handleReply(C, F))
          return false;
        C.In.consumeFrame(F.size());
      }
    }
  }

  /// Runs one phase to completion: every conn's Total requests sent and
  /// every reply received, or failure/deadline.
  bool runPhase(Phase Ph, const char *What) {
    size_t Outstanding = 0;
    for (ClientConn &C : Conns) {
      C.Cursor = 0;
      C.Replies = 0;
      C.Total = Ph == Phase::Feed ? C.Members.size() * FramesPerSession
                                  : C.Members.size();
      Outstanding += C.Total;
    }
    Clock::time_point Deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(Cfg.TimeoutS));
    std::vector<pollfd> Pfds(Conns.size());
    while (Outstanding) {
      for (size_t I = 0; I < Conns.size(); ++I) {
        ClientConn &C = Conns[I];
        short Ev = 0;
        if (C.Replies < C.Total)
          Ev |= POLLIN;
        if (C.OutOff < C.Out.size() ||
            (C.Cursor < C.Total && C.Pend.size() < Cfg.Window))
          Ev |= POLLOUT;
        Pfds[I] = {C.Fd, Ev, 0};
      }
      int N = ::poll(Pfds.data(), nfds_t(Pfds.size()), 1000);
      if (N < 0 && errno != EINTR)
        return fail("poll: " + std::string(strerror(errno)));
      if (Clock::now() > Deadline)
        return fail(std::string(What) + " phase timed out with " +
                    std::to_string(Outstanding) + " replies outstanding");
      if (N <= 0)
        continue;
      for (size_t I = 0; I < Conns.size(); ++I) {
        ClientConn &C = Conns[I];
        size_t Before = C.Replies;
        if (Pfds[I].revents & POLLOUT)
          if (!pumpWrite(Ph, C))
            return false;
        if (Pfds[I].revents & (POLLIN | POLLERR | POLLHUP))
          if (!pumpRead(C))
            return false;
        Outstanding -= C.Replies - Before;
      }
    }
    return true;
  }
};

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Sequential oracle: the same pipeline fed the same bytes at the same
/// chunk boundaries on one thread, no server.  Returns false on
/// mismatch.
bool verifySession(const Config &Cfg, PipelineCache &Cache, uint32_t SessId,
                   uint32_t FramesPerSession, const std::string &Actual,
                   std::string *Err) {
  std::string E;
  auto Spec = PipelineSpec::parse(EchoSpec, &E);
  if (!Spec) {
    *Err = "oracle spec: " + E;
    return false;
  }
  auto P = Cache.get(*Spec, Cfg.Backend == "native", &E);
  if (!P) {
    *Err = "oracle compile: " + E;
    return false;
  }
  StreamSession::Backend B = Cfg.Backend == "vm" ? StreamSession::Backend::Vm
                             : Cfg.Backend == "native"
                                 ? StreamSession::Backend::Native
                                 : StreamSession::Backend::Fast;
  auto St = StreamSession::open(std::move(P), B, &E);
  if (!St) {
    *Err = "oracle open: " + E;
    return false;
  }
  std::string Expected;
  for (uint32_t J = 0; J < FramesPerSession; ++J) {
    if (!St->feed(framePayload(Cfg, SessId, J))) {
      *Err = "oracle rejected stream";
      return false;
    }
    Expected += St->takeOutput();
  }
  St->finish();
  Expected += St->takeOutput();
  if (Expected != Actual) {
    size_t At = 0;
    while (At < Expected.size() && At < Actual.size() &&
           Expected[At] == Actual[At])
      ++At;
    *Err = "output diverges from sequential oracle at byte " +
           std::to_string(At) + " (expected " +
           std::to_string(Expected.size()) + " bytes, got " +
           std::to_string(Actual.size()) + ")";
    return false;
  }
  return true;
}

uint64_t statValue(const std::string &Stats, const std::string &Key) {
  size_t At = Stats.find(Key + "=");
  if (At == std::string::npos)
    return 0;
  return strtoull(Stats.c_str() + At + Key.size() + 1, nullptr, 10);
}

void raiseFdLimit(uint64_t Need) {
  rlimit RL{};
  if (getrlimit(RLIMIT_NOFILE, &RL) != 0)
    return;
  if (RL.rlim_cur >= Need)
    return;
  RL.rlim_cur = std::min<rlim_t>(std::max<rlim_t>(Need, RL.rlim_cur),
                                 RL.rlim_max);
  setrlimit(RLIMIT_NOFILE, &RL);
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  size_t K = std::min(V.size() - 1, size_t(P * double(V.size() - 1) + 0.5));
  std::nth_element(V.begin(), V.begin() + ptrdiff_t(K), V.end());
  return V[K];
}

int usage(const char *Argv0) {
  fprintf(stderr,
          "usage: %s [--sessions N] [--conns N] [--shards N] [--chunk BYTES]\n"
          "          [--bytes-per-session BYTES] [--window N] [--seed N]\n"
          "          [--backend vm|fastpath|native] [--scenario NAME]\n"
          "          [--timeout-s SECS] [--json PATH] [--no-json]\n"
          "\n"
          "Drives N concurrent streaming sessions over multiplexed client\n"
          "connections against an in-process sharded server; verifies every\n"
          "reply byte against a sequential oracle and merges p50/p99 feed\n"
          "latency + MB/s into BENCH_serve.json.  EFC_SERVE_SESSIONS\n"
          "overrides the default session count.\n",
          Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  Config Cfg;
  Cfg.Sessions = env::u64("EFC_SERVE_SESSIONS", Cfg.Sessions, 1, 1u << 20);
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&](uint64_t &Out) {
      if (I + 1 >= argc)
        return false;
      Out = strtoull(argv[++I], nullptr, 10);
      return true;
    };
    uint64_t V = 0;
    if (A == "--sessions" && Next(V))
      Cfg.Sessions = V;
    else if (A == "--conns" && Next(V))
      Cfg.Conns = unsigned(V);
    else if (A == "--shards" && Next(V))
      Cfg.Shards = unsigned(V);
    else if (A == "--chunk" && Next(V))
      Cfg.Chunk = size_t(V);
    else if (A == "--bytes-per-session" && Next(V))
      Cfg.BytesPerSession = size_t(V);
    else if (A == "--window" && Next(V))
      Cfg.Window = unsigned(V);
    else if (A == "--seed" && Next(V))
      Cfg.Seed = V;
    else if (A == "--timeout-s" && Next(V))
      Cfg.TimeoutS = double(V);
    else if (A == "--backend" && I + 1 < argc)
      Cfg.Backend = argv[++I];
    else if (A == "--scenario" && I + 1 < argc)
      Cfg.Scenario = argv[++I];
    else if (A == "--json" && I + 1 < argc)
      Cfg.JsonPath = argv[++I];
    else if (A == "--no-json")
      Cfg.WriteJson = false;
    else
      return usage(argv[0]);
  }
  if (!Cfg.Sessions || !Cfg.Conns || !Cfg.Chunk || !Cfg.Window)
    return usage(argv[0]);
  Cfg.Conns = unsigned(std::min<uint64_t>(Cfg.Conns, Cfg.Sessions));

  Load L;
  L.Cfg = Cfg;
  L.FramesPerSession =
      uint32_t(std::max<size_t>(1, Cfg.BytesPerSession / Cfg.Chunk));
  raiseFdLimit(uint64_t(Cfg.Conns) * 2 + 64);

  // In-process server on a temp Unix socket.  IdleMs is pinned high so
  // a slow run can never trip the reaper mid-measurement.
  std::string Sock =
      "/tmp/efc_serve_load_" + std::to_string(uint64_t(getpid())) + ".sock";
  ServerOptions O;
  O.SocketPath = Sock;
  O.Shards = Cfg.Shards;
  O.CacheCapacity = 8;
  O.IdleMs = 3600000;
  Server Srv(O);
  std::string Err;
  if (!Srv.start(&Err)) {
    fprintf(stderr, "serve_load: server start failed: %s\n", Err.c_str());
    return 1;
  }

  L.Conns.resize(Cfg.Conns);
  L.Actual.resize(Cfg.Sessions);
  L.FeedLatMs.reserve(size_t(Cfg.Sessions) * L.FramesPerSession);
  for (unsigned I = 0; I < Cfg.Conns; ++I) {
    int Fd = connectUnix(Sock);
    if (Fd < 0) {
      fprintf(stderr, "serve_load: connect %u/%u failed: %s\n", I, Cfg.Conns,
              strerror(errno));
      return 1;
    }
    int Flags = fcntl(Fd, F_GETFL, 0);
    fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
    L.Conns[I].Fd = Fd;
  }
  // Sessions pinned round-robin to connections: every frame of a
  // session travels one connection, so per-session reply order is the
  // per-connection FIFO the protocol guarantees.
  for (uint32_t S = 0; S < Cfg.Sessions; ++S)
    L.Conns[S % Cfg.Conns].Members.push_back(S);

  fprintf(stderr,
          "serve_load: %llu sessions x %u frames x %zu B over %u conns, "
          "%u shard(s), window %u\n",
          (unsigned long long)Cfg.Sessions, L.FramesPerSession, Cfg.Chunk,
          Cfg.Conns, Cfg.Shards, Cfg.Window);

  int Rc = 0;
  auto T0 = Clock::now();
  double OpenS = 0, FeedS = 0, FinishS = 0;
  if (!L.runPhase(Phase::Open, "open"))
    Rc = 1;
  auto T1 = Clock::now();
  OpenS = std::chrono::duration<double>(T1 - T0).count();
  if (!Rc) {
    if (!L.runPhase(Phase::Feed, "feed"))
      Rc = 1;
    auto T2 = Clock::now();
    FeedS = std::chrono::duration<double>(T2 - T1).count();
    if (!Rc && !L.runPhase(Phase::Finish, "finish"))
      Rc = 1;
    FinishS = std::chrono::duration<double>(Clock::now() - T2).count();
  }

  std::string Stats = Srv.statsText();
  uint64_t Dropped = statValue(Stats, "frames_dropped");
  uint64_t Evicted = statValue(Stats, "sessions_evicted");
  for (ClientConn &C : L.Conns)
    ::close(C.Fd);
  Srv.stop();
  ::unlink(Sock.c_str());

  if (Rc) {
    fprintf(stderr, "serve_load: FAILED: %s\n", L.FirstError.c_str());
    return 1;
  }
  if (Dropped || Evicted) {
    fprintf(stderr,
            "serve_load: FAILED: server dropped %llu frame(s), evicted %llu "
            "session(s) during the run\n",
            (unsigned long long)Dropped, (unsigned long long)Evicted);
    return 1;
  }

  // Byte-exact divergence check against the sequential oracle.
  PipelineCache OracleCache(4);
  for (uint32_t S = 0; S < Cfg.Sessions; ++S) {
    std::string VErr;
    if (!verifySession(Cfg, OracleCache, S, L.FramesPerSession, L.Actual[S],
                       &VErr)) {
      fprintf(stderr, "serve_load: FAILED: session %s: %s\n",
              sessionName(S).c_str(), VErr.c_str());
      return 1;
    }
  }

  uint64_t Frames = uint64_t(Cfg.Sessions) * L.FramesPerSession;
  double FeedMb = double(Frames * Cfg.Chunk) / 1e6;
  double P50 = percentile(L.FeedLatMs, 0.50);
  double P99 = percentile(L.FeedLatMs, 0.99);
  double MbPerS = FeedS > 0 ? FeedMb / FeedS : 0;
  printf("serve_load: OK — %llu sessions verified byte-identical to the "
         "sequential oracle\n",
         (unsigned long long)Cfg.Sessions);
  printf("  open   %8.2fs  (%0.0f sessions/s)\n", OpenS,
         OpenS > 0 ? double(Cfg.Sessions) / OpenS : 0);
  printf("  feed   %8.2fs  %llu frames, %.1f MB payload, %.2f MB/s\n", FeedS,
         (unsigned long long)Frames, FeedMb, MbPerS);
  printf("  finish %8.2fs\n", FinishS);
  printf("  feed RTT under load: p50 %.3f ms, p99 %.3f ms (%zu samples)\n",
         P50, P99, L.FeedLatMs.size());

  if (Cfg.WriteJson) {
    efc::bench::ServeRow Row;
    Row.Scenario = Cfg.Scenario;
    Row.Sessions = Cfg.Sessions;
    Row.Shards = Cfg.Shards;
    Row.Conns = Cfg.Conns;
    Row.Chunk = Cfg.Chunk;
    Row.Frames = Frames;
    Row.P50Ms = P50;
    Row.P99Ms = P99;
    Row.MbPerS = MbPerS;
    efc::bench::writeServeJson(Cfg.JsonPath, Row);
  }
  return 0;
}
