//===- bench/fig10_xpath.cpp - Figure 10: XML query throughputs -----------===//
//
// Regenerates the paper's Figure 10: XPath extraction pipelines in four
// variants:
//
//   XmlDocument — DOM baseline: parse the whole document, walk the tree
//   XPathReader — streaming baseline with string comparisons per tag
//   MethodCall  — per-element push composition of compiled stages
//   Fused       — single fused transducer
//
//===----------------------------------------------------------------------===//

#include "bench/baselines/XmlLib.h"
#include "bench/common/BenchCommon.h"
#include "data/Datasets.h"
#include "stdlib/Reference.h"

#include <benchmark/benchmark.h>

#include <functional>

using namespace efc;
using namespace efc::bench;

namespace {

enum class Agg { Max, Min, Avg, Sql };

/// Aggregates matched text contents the way each pipeline does.
std::string aggregate(const std::vector<std::u16string> &Matches,
                      Agg Kind) {
  if (Kind == Agg::Sql) {
    std::u16string Out;
    for (const std::u16string &M : Matches) {
      Out += u"INSERT INTO account VALUES (";
      Out += M;
      Out += u");\n";
    }
    return *ref::utf8Encode(Out);
  }
  uint64_t Acc = Kind == Agg::Min ? ~uint64_t(0) : 0;
  uint64_t Sum = 0, Count = 0;
  for (const std::u16string &M : Matches) {
    uint32_t V = *ref::toInt(M);
    switch (Kind) {
    case Agg::Max:
      Acc = std::max<uint64_t>(Acc, V);
      break;
    case Agg::Min:
      Acc = std::min<uint64_t>(Acc, V);
      break;
    default:
      Sum += V;
      ++Count;
      break;
    }
  }
  if (Kind == Agg::Avg)
    Acc = Count ? Sum / Count : 0;
  std::u16string Line = ref::intToDecimal(uint32_t(Acc));
  Line.push_back(u'\n');
  return *ref::utf8Encode(Line);
}

struct Case {
  std::string Name;
  std::function<BuiltPipeline()> Make;
  std::string Query;
  std::string Xml;
  Agg Kind;
};

void registerCase(const Case &C,
                  std::vector<std::shared_ptr<BuiltPipeline>> &Keep) {
  auto In = std::make_shared<std::vector<uint64_t>>(rawOfBytes(C.Xml));
  auto Xml = std::make_shared<std::string>(C.Xml);
  auto Path = std::make_shared<std::vector<std::u16string>>(
      baselines::splitPath(C.Query));
  Agg Kind = C.Kind;

  // DOM baseline.
  benchmark::RegisterBenchmark(
      (C.Name + "/XmlDocument").c_str(),
      [Xml, Path, Kind](benchmark::State &S) {
        for (auto _ : S) {
          std::u16string Chars = *ref::utf8Decode(*Xml);
          auto Dom = baselines::parseXmlDom(Chars);
          if (!Dom) {
            S.SkipWithError("malformed XML");
            return;
          }
          std::string Out = aggregate(baselines::domQuery(**Dom, *Path),
                                      Kind);
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) *
                            int64_t(Xml->size()));
      });

  // Streaming baseline.
  benchmark::RegisterBenchmark(
      (C.Name + "/XPathReader").c_str(),
      [Xml, Path, Kind](benchmark::State &S) {
        for (auto _ : S) {
          std::u16string Chars = *ref::utf8Decode(*Xml);
          auto Matches = baselines::streamingXPath(Chars, *Path);
          if (!Matches) {
            S.SkipWithError("malformed XML");
            return;
          }
          std::string Out = aggregate(*Matches, Kind);
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) *
                            int64_t(Xml->size()));
      });

  auto P = std::make_shared<BuiltPipeline>(C.Make());
  Keep.push_back(P);

  benchmark::RegisterBenchmark(
      (C.Name + "/MethodCall").c_str(), [P, In](benchmark::State &S) {
        PushPipeline Push(P->stagePtrs());
        std::vector<uint64_t> Out;
        for (auto _ : S) {
          Out.clear();
          if (!Push.run(*In, Out)) {
            S.SkipWithError("pipeline rejected its input");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * int64_t(In->size()));
      });

  benchmark::RegisterBenchmark(
      (C.Name + "/Fused").c_str(), [P, In](benchmark::State &S) {
        for (auto _ : S) {
          auto Out = P->CompiledFused->run(*In);
          if (!Out) {
            S.SkipWithError("pipeline rejected its input");
            return;
          }
          benchmark::DoNotOptimize(Out);
        }
        S.SetBytesProcessed(int64_t(S.iterations()) * int64_t(In->size()));
      });

  if (P->Native) {
    benchmark::RegisterBenchmark(
        (C.Name + "/FusedNative").c_str(), [P, In](benchmark::State &S) {
          for (auto _ : S) {
            auto Out = P->Native->run(*In);
            if (!Out) {
              S.SkipWithError("pipeline rejected its input");
              return;
            }
            benchmark::DoNotOptimize(Out);
          }
          S.SetBytesProcessed(int64_t(S.iterations()) *
                              int64_t(In->size()));
        });
  }
}

} // namespace

int main(int argc, char **argv) {
  size_t MB = benchBytes();
  std::vector<Case> Cases;
  Cases.push_back({"TPC-DI-SQL", [] { return makeTpcDiSqlPipeline(); },
                   "/customers/customer/account",
                   data::makeTpcDiXml(201, MB), Agg::Sql});
  Cases.push_back({"PIR-proteins", [] { return makePirProteinsPipeline(); },
                   "/proteins/protein/length", data::makePirXml(202, MB),
                   Agg::Avg});
  Cases.push_back({"DBLP-oldest", [] { return makeDblpOldestPipeline(); },
                   "/dblp/article/year", data::makeDblpXml(203, MB),
                   Agg::Min});
  Cases.push_back({"MONDIAL", [] { return makeMondialPipeline(); },
                   "/mondial/country/city/population",
                   data::makeMondialXml(204, MB), Agg::Max});

  std::vector<std::shared_ptr<BuiltPipeline>> Keep;
  for (const Case &C : Cases)
    registerCase(C, Keep);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
