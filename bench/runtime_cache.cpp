//===- bench/runtime_cache.cpp - PipelineCache hit/miss latency -----------===//
//
// Measures what the serving runtime buys: the latency of satisfying a
// pipeline request cold (fuse + optimize + VM compile, plus the host
// compiler for the native backend) versus warm (in-memory cache hit, or
// on-disk artifact cache across process restarts).  This is the
// cached-vs-cold gap EXPERIMENTS.md discusses next to Figure 11's
// compilation-cost table.
//
//===----------------------------------------------------------------------===//

#include "runtime/PipelineCache.h"
#include "runtime/StreamSession.h"
#include "support/Stopwatch.h"

#include <cstdio>
#include <cstdlib>

using namespace efc;
using namespace efc::runtime;

namespace {

PipelineSpec spec(const char *Pattern, const char *Agg, const char *Format) {
  PipelineSpec S;
  S.Kind = PipelineSpec::Frontend::Regex;
  S.Pattern = Pattern;
  S.Agg = Agg;
  S.Format = Format;
  return S;
}

double msSince(const Stopwatch &W) { return W.seconds() * 1e3; }

} // namespace

int main() {
  // Scratch artifact dir so the "cold" numbers really are cold.
  std::string Dir = "/tmp/efc-bench-cache-" + std::to_string(getpid());
  setenv("EFC_CACHE_DIR", Dir.c_str(), 1);

  const struct {
    const char *Name;
    PipelineSpec Spec;
  } Specs[] = {
      {"CSV-max",
       spec("(?:(?:[^,\\n]*,){1}(?<v>\\d+),[^\\n]*\\n)*", "max", "decimal")},
      {"CSV-avg",
       spec("(?:(?:[^,\\n]*,){3}(?<v>\\d+),[^\\n]*\\n)*", "avg", "decimal")},
      {"CSV-sql",
       spec("(?:(?:[^,\\n]*,){2}(?<v>\\d+),[^\\n]*\\n)*", "none", "sql")},
  };

  printf("Pipeline request latency, cold vs cached (ms):\n\n");
  printf("%-10s %10s %12s %12s %12s\n", "Pipeline", "cold(vm)", "hit(mem)",
         "cold(nat)", "hit(disk)");
  printf("-----------------------------------------------------------\n");

  for (const auto &Case : Specs) {
    std::string Err;

    // Cold VM-only request: fusion + optimization + bytecode compile.
    PipelineCache Cold(8);
    Stopwatch W1;
    auto P = Cold.get(Case.Spec, false, &Err);
    double ColdVm = msSince(W1);
    if (!P) {
      fprintf(stderr, "build failed: %s\n", Err.c_str());
      return 1;
    }

    // Warm in-memory hit: the steady-state cost an efc-serve session
    // open pays once the cache is populated.
    Stopwatch W2;
    for (int I = 0; I < 1000; ++I)
      (void)Cold.get(Case.Spec, false, &Err);
    double HitMem = msSince(W2) / 1000;

    // Cold native request: the above plus the host compiler.
    Stopwatch W3;
    auto PN = Cold.get(Case.Spec, true, &Err);
    double ColdNat = msSince(W3) + ColdVm; // fusion happened in W1
    bool HaveNative = PN != nullptr;

    // Simulated restart: a fresh cache re-fuses but must satisfy the
    // native artifact from disk without the compiler.
    double HitDisk = -1;
    if (HaveNative) {
      PipelineCache Fresh(8);
      Stopwatch W4;
      auto PF = Fresh.get(Case.Spec, true, &Err);
      HitDisk = msSince(W4);
      if (!PF || Fresh.stats().NativeCompiles != 0) {
        fprintf(stderr, "expected a disk artifact hit\n");
        return 1;
      }
    }

    printf("%-10s %10.1f %12.4f", Case.Name, ColdVm, HitMem);
    if (HaveNative)
      printf(" %12.1f %12.1f\n", ColdNat, HitDisk);
    else
      printf(" %12s %12s\n", "n/a", "n/a");
    fflush(stdout);

    // Sanity: a warm entry still serves correct streamed requests.
    auto S = StreamSession::open(P, StreamSession::Backend::Vm, &Err);
    if (!S || !S->feed(std::string_view("a,1,2,3,x\n")))
      fprintf(stderr, "  (stream sanity feed failed)\n");
  }

  printf("\nhit(mem) is the per-request cost once warm; hit(disk) is a\n"
         "process restart with a warm artifact cache (re-fuses, but no\n"
         "host compiler).  Cache dir: %s\n",
         Dir.c_str());
  return 0;
}
