//===- bench/ablate_branch_order.cpp - §2's branch-order observation ------===//
//
// The paper (§2) notes that the order of conditions in a branching rule
// matters: in Utf8Decode the ASCII test should come first when ASCII
// dominates the input.  This ablation builds both orders and measures VM
// throughput on English text (ASCII-heavy) and on 2-byte-heavy text.
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "data/Datasets.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "support/Stopwatch.h"
#include "vm/Vm.h"

#include <cstdio>

using namespace efc;
using namespace efc::bench;

namespace {

/// Utf8Decode2 with the multibyte test first (the §2 anti-pattern).
Bst makeUtf8DecodeMultibyteFirst(TermContext &Ctx) {
  Bst A = lib::makeUtf8Decode2(Ctx);
  TermRef X = A.inputVar();
  TermRef X16 = Ctx.mkZExt(X, 16);
  TermRef Zero = Ctx.bvConst(16, 0);
  A.setDelta(
      0, Rule::ite(Ctx.mkInRange(X, 0xC2, 0xDF),
                   Rule::base({}, 1,
                              Ctx.mkShlC(Ctx.mkBvAnd(X16,
                                                     Ctx.bvConst(16, 0x3F)),
                                         6)),
                   Rule::ite(Ctx.mkUle(X, Ctx.bvConst(8, 0x7F)),
                             Rule::base({X16}, 0, Zero), Rule::undef())));
  return A;
}

double throughputMBs(const CompiledTransducer &T,
                     const std::vector<uint64_t> &In) {
  if (!T.run(In))
    return -1;
  Stopwatch W;
  int Iters = 0;
  while (W.seconds() < 1.0) {
    auto Out = T.run(In);
    ++Iters;
  }
  return double(In.size()) * Iters / W.seconds() / (1024 * 1024);
}

} // namespace

int main() {
  TermContext Ctx;
  Bst AsciiFirst = lib::makeUtf8Decode2(Ctx);
  Bst MultiFirst = makeUtf8DecodeMultibyteFirst(Ctx);
  auto CA = CompiledTransducer::compile(AsciiFirst);
  auto CM = CompiledTransducer::compile(MultiFirst);

  // ASCII-dominated input.
  std::string English = data::makeEnglishText(11, 2 * 1024 * 1024);
  // 2-byte-dominated input (Latin-1 supplement chars).
  std::u16string Accented;
  SplitMix64 Rng(12);
  for (size_t I = 0; I < 1024 * 1024; ++I)
    Accented.push_back(char16_t(0xC0 + Rng.below(0x30)));
  std::string TwoByte = *ref::utf8Encode(Accented);

  printf("Branch-order ablation (the paper's §2 observation):\n\n");
  printf("%-18s %14s %14s\n", "rule order", "English MB/s", "2-byte MB/s");
  printf("%-18s %14.2f %14.2f\n", "ASCII test first",
         throughputMBs(*CA, rawOfBytes(English)),
         throughputMBs(*CA, rawOfBytes(TwoByte)));
  printf("%-18s %14.2f %14.2f\n", "multibyte first",
         throughputMBs(*CM, rawOfBytes(English)),
         throughputMBs(*CM, rawOfBytes(TwoByte)));
  return 0;
}
