//===- tools/efcc.cpp - The effectful-comprehension compiler CLI ----------===//
//
// Command-line counterpart of the paper's tool: declare a pipeline
// (decode → extract → aggregate → format → encode), fuse and optimize it,
// then either run it over a file or emit C++ for it.
//
//   efcc --regex '(?:(?:[^,\n]*,){5}(?<v>\d+),[^\n]*\n)*' \
//        --agg max --run data.csv
//   efcc --xpath /cities/city/population --agg max --emit-cpp out.cpp
//   efcc --regex ... --stats
//
// Options:
//   --regex P        extract with a regex comprehension (one capture <v>
//                    parsed as a decimal int)
//   --xpath Q        extract with an XPath comprehension (contents parsed
//                    as decimal ints)
//   --agg K          max | min | avg | none        (default: none)
//   --format K       decimal | lines | sql         (default: lines)
//   --no-rbbe        skip reachability-based branch elimination
//   --minimize       run control-state minimization
//   --run FILE       execute over FILE, write output bytes to stdout
//   --emit-cpp FILE  write generated C++ to FILE
//   --stats          print pipeline statistics to stderr
//
//===----------------------------------------------------------------------===//

#include "bst/Minimize.h"
#include "codegen/CppCodeGen.h"
#include "frontends/regex/RegexFrontend.h"
#include "frontends/xpath/XPathFrontend.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "vm/Vm.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

using namespace efc;

namespace {

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efcc: %s\n", Msg);
  fprintf(stderr,
          "usage: efcc (--regex P | --xpath Q) [--agg max|min|avg|none]\n"
          "            [--format decimal|lines|sql] [--no-rbbe]\n"
          "            [--minimize] [--stats]\n"
          "            [--run FILE] [--emit-cpp FILE]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Regex, XPath, Agg = "none", Format = "lines";
  std::string RunFile, EmitFile;
  bool DoRbbe = true, DoMinimize = false, Stats = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--regex") {
      if (const char *V = Next())
        Regex = V;
      else
        return usage("--regex needs a pattern");
    } else if (A == "--xpath") {
      if (const char *V = Next())
        XPath = V;
      else
        return usage("--xpath needs a query");
    } else if (A == "--agg") {
      if (const char *V = Next())
        Agg = V;
      else
        return usage("--agg needs a kind");
    } else if (A == "--format") {
      if (const char *V = Next())
        Format = V;
      else
        return usage("--format needs a kind");
    } else if (A == "--run") {
      if (const char *V = Next())
        RunFile = V;
      else
        return usage("--run needs a file");
    } else if (A == "--emit-cpp") {
      if (const char *V = Next())
        EmitFile = V;
      else
        return usage("--emit-cpp needs a file");
    } else if (A == "--no-rbbe") {
      DoRbbe = false;
    } else if (A == "--minimize") {
      DoMinimize = true;
    } else if (A == "--stats") {
      Stats = true;
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }
  if (Regex.empty() == XPath.empty())
    return usage("exactly one of --regex / --xpath is required");
  if (RunFile.empty() && EmitFile.empty() && !Stats)
    return usage("nothing to do: pass --run, --emit-cpp or --stats");

  TermContext Ctx;
  Solver S(Ctx);

  // Assemble the modular pipeline.
  std::vector<Bst> Stages;
  Stages.push_back(lib::makeUtf8Decode2(Ctx));
  Bst ToInt = lib::makeToInt(Ctx);
  if (!Regex.empty()) {
    fe::RegexBstResult R = fe::buildRegexBst(Ctx, Regex, {{"v", &ToInt}});
    if (!R.Result) {
      fprintf(stderr, "efcc: regex error: %s\n", R.Error.c_str());
      return 1;
    }
    Stages.push_back(std::move(*R.Result));
  } else {
    fe::XPathBstResult R = fe::buildXPathBst(Ctx, XPath, ToInt);
    if (!R.Result) {
      fprintf(stderr, "efcc: xpath error: %s\n", R.Error.c_str());
      return 1;
    }
    Stages.push_back(std::move(*R.Result));
  }
  if (Agg == "max")
    Stages.push_back(lib::makeMax(Ctx));
  else if (Agg == "min")
    Stages.push_back(lib::makeMin(Ctx));
  else if (Agg == "avg")
    Stages.push_back(lib::makeAverage(Ctx));
  else if (Agg != "none")
    return usage("unknown --agg kind");
  if (Format == "decimal")
    Stages.push_back(lib::makeIntToDecimal(Ctx));
  else if (Format == "lines")
    Stages.push_back(lib::makeIntToDecimalLines(Ctx));
  else if (Format == "sql")
    Stages.push_back(
        lib::makeIntWrap(Ctx, "INSERT INTO t VALUES (", ");\n"));
  else
    return usage("unknown --format kind");
  Stages.push_back(lib::makeUtf8Encode(Ctx));

  // Fuse and optimize.
  std::vector<const Bst *> Ptrs;
  for (const Bst &St : Stages)
    Ptrs.push_back(&St);
  FusionStats FStats;
  Bst Fused = fuseChain(Ptrs, S, {}, &FStats);
  RbbeStats RStats;
  if (DoRbbe) {
    RbbeOptions ROpts;
    ROpts.ConflictBudget = 0;
    Fused = eliminateUnreachableBranches(Fused, S, ROpts, &RStats);
  }
  MinimizeStats MStats;
  if (DoMinimize)
    Fused = minimizeStates(Fused, &MStats);

  if (Stats) {
    fprintf(stderr,
            "efcc: %zu stages fused into %u states, %u branches "
            "(%.2fs, %llu solver checks)\n",
            Stages.size(), Fused.numStates(), Fused.countBranches(),
            FStats.Seconds, (unsigned long long)FStats.SolverChecks);
    if (DoRbbe)
      fprintf(stderr, "efcc: RBBE removed %u branches in %.2fs\n",
              RStats.BranchesRemoved + RStats.FinalBranchesRemoved,
              RStats.Seconds);
    if (DoMinimize)
      fprintf(stderr, "efcc: minimization: %u -> %u states\n",
              MStats.StatesBefore, MStats.StatesAfter);
  }

  if (!EmitFile.empty()) {
    CodeGenOptions Opts;
    Opts.FunctionName = "pipeline";
    std::ofstream F(EmitFile);
    if (!F) {
      fprintf(stderr, "efcc: cannot write %s\n", EmitFile.c_str());
      return 1;
    }
    F << generateCpp(Fused, Opts);
    fprintf(stderr, "efcc: wrote %s\n", EmitFile.c_str());
  }

  if (!RunFile.empty()) {
    std::ifstream F(RunFile, std::ios::binary);
    if (!F) {
      fprintf(stderr, "efcc: cannot read %s\n", RunFile.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << F.rdbuf();
    std::string Data = Buf.str();
    auto T = CompiledTransducer::compile(Fused);
    if (!T) {
      fprintf(stderr, "efcc: pipeline has non-scalar element types\n");
      return 1;
    }
    std::vector<uint64_t> In;
    In.reserve(Data.size());
    for (unsigned char C : Data)
      In.push_back(C);
    auto Out = T->run(In);
    if (!Out) {
      fprintf(stderr, "efcc: input rejected by the pipeline\n");
      return 1;
    }
    std::string Bytes;
    for (uint64_t B : *Out)
      Bytes.push_back(char(B));
    fwrite(Bytes.data(), 1, Bytes.size(), stdout);
  }
  return 0;
}
