//===- tools/efcc.cpp - The effectful-comprehension compiler CLI ----------===//
//
// Command-line counterpart of the paper's tool: declare a pipeline
// (decode → extract → aggregate → format → encode), fuse and optimize it,
// then either run it over a file or emit C++ for it.
//
//   efcc --regex '(?:(?:[^,\n]*,){5}(?<v>\d+),[^\n]*\n)*' \
//        --agg max --run data.csv
//   efcc --xpath /cities/city/population --agg max --emit-cpp out.cpp
//   efcc --regex ... --stats
//
// Options:
//   --regex P        extract with a regex comprehension (one capture <v>
//                    parsed as a decimal int)
//   --xpath Q        extract with an XPath comprehension (contents parsed
//                    as decimal ints)
//   --agg K          max | min | avg | none        (default: none)
//   --format K       decimal | lines | sql         (default: lines)
//   --no-rbbe        skip reachability-based branch elimination
//   --minimize       run control-state minimization
//   --opt-level N    0 = fuse only, 1 = fuse+rbbe (default), 2 =
//                    fuse+rbbe+minimize
//   --passes LIST    comma-separated IR pass list (fuse[,rbbe][,minimize])
//                    overriding the flags above; the artifact passes
//                    (vm_compile, fastpath_plan, parallel_plan) always run
//   --rbbe-budget N  RBBE solver-check budget override (0 = library
//                    default); only re-keys the rbbe pass, so the cached
//                    fusion artifact is reused across budget changes
//   --explain-passes print the pass plan (name, kind, cacheability,
//                    options fingerprint) and, per executed pass, the
//                    entering/leaving IR hash, wall time and cache-hit
//                    flag to stdout
//   --run FILE       execute over FILE, write output bytes to stdout
//   --parallel N     run --run input through the data-parallel executor
//                    (src/parallel/) with N threads.  Requires the
//                    fastpath backend (the parallel plan is derived from
//                    the byte-class tables); inputs below
//                    EFC_PARALLEL_MIN_BYTES (default 1 MB, 0 disables
//                    the check) are refused rather than silently run
//                    sequentially.
//   --backend K      vm | fastpath | native   (default: fastpath)
//                    vm       = plain bytecode interpreter
//                    fastpath = byte-class dispatch tables over the VM
//                               (vm/FastPath.h; bytecode fallback for
//                               register-guarded states)
//                    native   = generated C++ compiled by the host
//                               compiler, served from the on-disk
//                               artifact cache when warm (EFC_CACHE_DIR)
//   --native         alias for --backend native
//   --emit-cpp FILE  write generated C++ to FILE
//   --stats          print pipeline statistics to stderr
//   --metrics        print the process-wide metrics registry (Prometheus
//                    text format, support/Metrics.h) to stderr at exit
//   --explain-fastpath
//                    dump per-state byte-class tables to stdout:
//                    eligible/fallback, class count, self-loop classes
//                    and the run kernels chosen for them
//   --certify        prove backend equivalence for this pipeline
//                    (verify/EquivChecker.h): bytecode vs fused rules,
//                    fast-path tables vs bytecode, codegen classifier
//                    hash.  Prints the report to stderr; exits 1 when
//                    any part is refuted (counterexamples included).
//   --certify-budget-ms N
//                    per-state certification time budget (default 5000)
//
// Pipeline assembly, fusion and backend selection all route through the
// runtime layer (runtime/PipelineCache.h), so efcc builds exactly what
// efc-serve serves.
//
//===----------------------------------------------------------------------===//

#include "codegen/CppCodeGen.h"
#include "parallel/Parallel.h"
#include "runtime/PipelineCache.h"
#include "support/EnvParse.h"
#include "support/Metrics.h"
#include "verify/EquivChecker.h"
#include "vm/Simd.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace efc;
using namespace efc::runtime;

namespace {

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efcc: %s\n", Msg);
  fprintf(stderr,
          "usage: efcc (--regex P | --xpath Q) [--agg max|min|avg|none]\n"
          "            [--format decimal|lines|sql] [--no-rbbe]\n"
          "            [--minimize] [--opt-level 0|1|2] [--passes LIST]\n"
          "            [--rbbe-budget N] [--stats] [--metrics]\n"
          "            [--explain-fastpath] [--explain-passes]\n"
          "            [--certify] [--certify-budget-ms N]\n"
          "            [--backend vm|fastpath|native] [--native]\n"
          "            [--run FILE [--parallel N]] [--emit-cpp FILE]\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string Regex, XPath, Agg = "none", Format = "lines";
  std::string RunFile, EmitFile, Backend = "fastpath";
  bool DoRbbe = true, DoMinimize = false, Stats = false, Metrics = false;
  bool ExplainFastPath = false, ExplainPasses = false, Certify = false;
  double CertifyBudgetMs = 5000;
  uint64_t RbbeBudget = 0;
  int OptLevel = -1; // -1: not given
  std::string PassList;
  long Parallel = 0; // thread count; meaningful only when ParallelGiven
  bool ParallelGiven = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--regex") {
      if (const char *V = Next())
        Regex = V;
      else
        return usage("--regex needs a pattern");
    } else if (A == "--xpath") {
      if (const char *V = Next())
        XPath = V;
      else
        return usage("--xpath needs a query");
    } else if (A == "--agg") {
      if (const char *V = Next())
        Agg = V;
      else
        return usage("--agg needs a kind");
    } else if (A == "--format") {
      if (const char *V = Next())
        Format = V;
      else
        return usage("--format needs a kind");
    } else if (A == "--run") {
      if (const char *V = Next())
        RunFile = V;
      else
        return usage("--run needs a file");
    } else if (A == "--emit-cpp") {
      if (const char *V = Next())
        EmitFile = V;
      else
        return usage("--emit-cpp needs a file");
    } else if (A == "--no-rbbe") {
      DoRbbe = false;
    } else if (A == "--minimize") {
      DoMinimize = true;
    } else if (A == "--opt-level") {
      const char *V = Next();
      uint64_t N = 0;
      if (!V || !env::parseU64(V, N) || N > 2)
        return usage("--opt-level needs 0, 1 or 2");
      OptLevel = int(N);
    } else if (A == "--passes") {
      const char *V = Next();
      if (!V)
        return usage("--passes needs a comma-separated list");
      PassList = V;
    } else if (A == "--rbbe-budget") {
      const char *V = Next();
      if (!V || !env::parseU64(V, RbbeBudget))
        return usage("--rbbe-budget needs an unsigned solver-check count");
    } else if (A == "--explain-passes") {
      ExplainPasses = true;
    } else if (A == "--backend") {
      if (const char *V = Next())
        Backend = V;
      else
        return usage("--backend needs vm|fastpath|native");
    } else if (A == "--parallel") {
      const char *V = Next();
      if (!V)
        return usage("--parallel needs a thread count");
      char *End = nullptr;
      Parallel = strtol(V, &End, 10);
      if (!End || *End)
        return usage("--parallel needs an integer thread count");
      ParallelGiven = true;
    } else if (A == "--native") {
      Backend = "native";
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--metrics") {
      Metrics = true;
    } else if (A == "--explain-fastpath") {
      ExplainFastPath = true;
    } else if (A == "--certify") {
      Certify = true;
    } else if (A == "--certify-budget-ms") {
      if (const char *V = Next())
        CertifyBudgetMs = atof(V);
      else
        return usage("--certify-budget-ms needs a number");
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }
  if (Regex.empty() == XPath.empty())
    return usage("exactly one of --regex / --xpath is required");
  if (RunFile.empty() && EmitFile.empty() && !Stats && !Metrics &&
      !ExplainFastPath && !ExplainPasses && !Certify)
    return usage(
        "nothing to do: pass --run, --emit-cpp, --stats, --metrics, "
        "--certify, --explain-fastpath or --explain-passes");
  if (OptLevel >= 0 && !PassList.empty())
    return usage("--opt-level and --passes are mutually exclusive");
  if (OptLevel >= 0) {
    DoRbbe = OptLevel >= 1;
    DoMinimize = OptLevel >= 2;
  }
  if (!PassList.empty()) {
    // Only the IR passes are selectable; the artifact passes always run.
    bool SawFuse = false;
    DoRbbe = DoMinimize = false;
    size_t Pos = 0;
    while (Pos <= PassList.size()) {
      size_t Comma = PassList.find(',', Pos);
      std::string Tok = PassList.substr(
          Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
      Pos = Comma == std::string::npos ? PassList.size() + 1 : Comma + 1;
      if (Tok.empty())
        continue;
      if (Tok == "fuse") {
        SawFuse = true;
      } else if (Tok == "rbbe") {
        DoRbbe = true;
      } else if (Tok == "minimize") {
        DoMinimize = true;
      } else if (pipeline::PassRegistry::instance().lookup(Tok)) {
        return usage(("pass '" + Tok +
                      "' is not selectable here (vm_compile, "
                      "fastpath_plan and parallel_plan always run)")
                         .c_str());
      } else {
        std::string Known;
        for (const std::string &N :
             pipeline::PassRegistry::instance().names())
          Known += (Known.empty() ? "" : ", ") + N;
        return usage(("unknown pass '" + Tok + "' (registered: " + Known +
                      ")")
                         .c_str());
      }
    }
    if (!SawFuse)
      return usage("--passes must include 'fuse'");
  }
  if (Backend != "vm" && Backend != "fastpath" && Backend != "native")
    return usage(("unknown backend '" + Backend + "'").c_str());
  bool Native = Backend == "native";

  // Contradictory --parallel combinations are hard errors, not silent
  // sequential runs (DESIGN.md "Data-parallel execution").
  bool WantParallel = ParallelGiven;
  if (WantParallel) {
    if (Parallel < 1)
      return usage("--parallel needs a thread count >= 1");
    if (Backend != "fastpath")
      return usage(("--parallel requires the fastpath backend: no "
                    "parallel plan exists for backend '" +
                    Backend + "'")
                       .c_str());
    if (RunFile.empty())
      return usage("--parallel only applies to --run");
  }

  PipelineSpec Spec;
  Spec.Kind = Regex.empty() ? PipelineSpec::Frontend::XPath
                            : PipelineSpec::Frontend::Regex;
  Spec.Pattern = Regex.empty() ? XPath : Regex;
  Spec.Agg = Agg;
  Spec.Format = Format;
  Spec.Rbbe = DoRbbe;
  Spec.Minimize = DoMinimize;
  Spec.RbbeBudget = RbbeBudget;

  // One-entry cache: efcc is one-shot, but going through the runtime
  // layer keeps assembly/fusion identical to efc-serve and gives --native
  // the on-disk artifact cache for free.
  PipelineCache Cache(1);
  std::string Err;
  auto P = Cache.get(Spec, /*WantNative=*/Native && !RunFile.empty(), &Err);
  if (!P) {
    fprintf(stderr, "efcc: %s\n", Err.c_str());
    return 1;
  }

  if (Stats) {
    fprintf(stderr,
            "efcc: %zu stages fused into %u states, %u branches "
            "(%.2fs, %llu solver checks)\n",
            P->NumStages, P->Fused->numStates(), P->Fused->countBranches(),
            P->FStats.Seconds, (unsigned long long)P->FStats.SolverChecks);
    if (DoRbbe)
      fprintf(stderr, "efcc: RBBE removed %u branches in %.2fs\n",
              P->RStats.BranchesRemoved + P->RStats.FinalBranchesRemoved,
              P->RStats.Seconds);
    if (DoMinimize)
      fprintf(stderr, "efcc: minimization: %u -> %u states\n",
              P->MStats.StatesBefore, P->MStats.StatesAfter);
    fprintf(stderr, "efcc: %s\n",
            pipeline::PassManager::cacheStats().str().c_str());
  }

  if (ExplainPasses) {
    pipeline::PipelineOptions PO;
    PO.Rbbe.ConflictBudget = 0;
    if (Spec.RbbeBudget != 0)
      PO.Rbbe.MaxSolverChecks = Spec.RbbeBudget;
    PO.FastPath = FastPathOptions::fromEnv();
    std::string Plan =
        pipeline::PassManager(
            pipeline::PassManager::defaultPasses(Spec.Rbbe, Spec.Minimize))
            .explain(PO);
    fputs(Plan.c_str(), stdout);
    for (const pipeline::PassRun &R : P->PassRuns)
      printf("  ran %s: in=%016llx out=%016llx %.3fs%s%s%s\n",
             R.PassName.c_str(), (unsigned long long)R.InHash,
             (unsigned long long)R.OutHash, R.Seconds,
             R.CacheHit ? " (cache hit)" : "",
             R.Note.empty() ? "" : " ", R.Note.c_str());
  }

  if (ExplainFastPath) {
    std::string Dump = explainFastPath(*P->Fused);
    fwrite(Dump.data(), 1, Dump.size(), stdout);
  }

  if (Certify) {
    verify::CertOptions COpts;
    COpts.StateBudgetSeconds = CertifyBudgetMs / 1000.0;
    verify::CertReport CR = verify::certifyPipeline(
        *P->Fused, *P->Vm, P->Fast ? &*P->Fast : nullptr, COpts);
    fprintf(stderr, "efcc: certify: %s\n", CR.summary().c_str());
    for (const verify::Counterexample &CE : CR.Counterexamples)
      fprintf(stderr, "efcc: counterexample: %s\n", CE.str().c_str());
    if (CR.Status == verify::CertStatus::Refuted)
      return 1;
  }

  if (!EmitFile.empty()) {
    CodeGenOptions Opts;
    Opts.FunctionName = "pipeline";
    std::ofstream F(EmitFile);
    if (!F) {
      fprintf(stderr, "efcc: cannot write %s\n", EmitFile.c_str());
      return 1;
    }
    F << generateCpp(*P->Fused, Opts);
    fprintf(stderr, "efcc: wrote %s\n", EmitFile.c_str());
  }

  if (!RunFile.empty()) {
    std::ifstream F(RunFile, std::ios::binary);
    if (!F) {
      fprintf(stderr, "efcc: cannot read %s\n", RunFile.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << F.rdbuf();
    std::string Data = Buf.str();
    std::vector<uint64_t> In;
    In.reserve(Data.size());
    for (unsigned char C : Data)
      In.push_back(C);

    if (WantParallel) {
      size_t MinBytes =
          size_t(env::u64("EFC_PARALLEL_MIN_BYTES", 1u << 20, 0,
                          UINT64_MAX, /*Base=*/0));
      if (!P->Par || !P->Par->eligible()) {
        fprintf(stderr,
                "efcc: no parallel plan for this pipeline (no "
                "byte-class table states, or too many register slots); "
                "drop --parallel to run sequentially\n");
        return 2;
      }
      if (Parallel > 1 && MinBytes && In.size() < MinBytes) {
        fprintf(stderr,
                "efcc: input %s is too small for --parallel %ld "
                "(%zu bytes < EFC_PARALLEL_MIN_BYTES=%zu); drop "
                "--parallel or lower EFC_PARALLEL_MIN_BYTES\n",
                RunFile.c_str(), Parallel, In.size(), MinBytes);
        return 2;
      }
    }

    std::optional<std::vector<uint64_t>> Out;
    if (Native) {
      CompiledPipeline::NativeOutcome Outcome;
      NativeCompileInfo Info;
      const NativeTransducer *N = P->native(&Err, &Outcome, &Info);
      if (!N) {
        fprintf(stderr, "efcc: native backend unavailable: %s\n",
                Err.c_str());
        return 1;
      }
      if (Stats) {
        if (Info.DiskCacheHit)
          fprintf(stderr, "efcc: native: artifact cache hit (%s)\n",
                  Info.SoPath.c_str());
        else
          fprintf(stderr, "efcc: native: compiled in %.0f ms (%s)\n",
                  Info.CompileMs, Info.SoPath.c_str());
      }
      Out = N->run(In);
    } else if (Backend == "fastpath" && P->Fast) {
      if (Stats) {
        const FastPathPlan::Stats &FS = P->Fast->stats();
        fprintf(stderr,
                "efcc: fast path: %u/%u states tabulated "
                "(%u const, %u jump, %u program actions)\n",
                FS.TableStates, FS.TableStates + FS.FallbackStates,
                FS.ConstActions, FS.JumpActions, FS.ProgramActions);
        fprintf(stderr,
                "efcc: run accel: %u/%u states (%u skip, %u copy, "
                "%u const-append kernels over %u bytes)\n",
                FS.AccelStates, FS.TableStates, FS.SkipKernels,
                FS.CopyKernels, FS.ConstAppendKernels, FS.AccelBytes);
        fprintf(stderr,
                "efcc: simd: detected %s, active %s; %u nibble kernels, "
                "%u spec pairs, %u wide states (%llu memoized wide "
                "elements)\n",
                simd::levelName(simd::detectedLevel()),
                simd::levelName(simd::activeLevel()), FS.NibbleKernels,
                FS.SpecPairs, FS.WideStates,
                (unsigned long long)FS.WideMemoElements);
      }
      if (WantParallel) {
        parallel::ParallelOptions PO;
        PO.Threads = unsigned(Parallel);
        parallel::ParallelStats PStats;
        Out = parallel::runParallel(*P->Par, *P->Fast, *P->Vm, In, PO,
                                    &PStats);
        if (Stats)
          fprintf(stderr,
                  "efcc: parallel: %llu chunks (%llu replayed, %llu "
                  "sequential), %llu lanes (%llu merged, %llu "
                  "abandoned), %llu replayed output elems\n",
                  (unsigned long long)PStats.ChunksPlanned,
                  (unsigned long long)PStats.ChunksSpeculated,
                  (unsigned long long)PStats.ChunksSequential,
                  (unsigned long long)PStats.LanesStarted,
                  (unsigned long long)PStats.LanesMerged,
                  (unsigned long long)PStats.LanesAbandoned,
                  (unsigned long long)PStats.ReplayElements);
      } else {
        Out = runFastPath(*P->Fast, *P->Vm, In);
      }
    } else {
      Out = P->Vm->run(In);
    }
    if (!Out) {
      fprintf(stderr, "efcc: input rejected by the pipeline\n");
      return 1;
    }
    std::string Bytes;
    for (uint64_t B : *Out)
      Bytes.push_back(char(B));
    fwrite(Bytes.data(), 1, Bytes.size(), stdout);
  }
  if (Metrics) {
    // stderr, like --stats: --run output on stdout stays machine-clean.
    std::string Dump = metrics::Registry::instance().renderPrometheus();
    fwrite(Dump.data(), 1, Dump.size(), stderr);
  }
  return 0;
}
