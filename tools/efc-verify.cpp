//===- tools/efc-verify.cpp - Certify backend equivalence per pipeline ----===//
//
// Runs the equivalence checker (verify/EquivChecker.h) over the paper's
// evaluation pipelines: for each one, proves that the VM bytecode agrees
// with the fused rule trees, that the byte-class fast-path tables and run
// kernels agree with the bytecode, and that generated C++ carries the
// classifier hash of the certified IR.
//
//   efc-verify                          # certify every suite
//   efc-verify --suite fig9            # one figure's pipelines
//   efc-verify --pipeline base64       # name substring filter
//   efc-verify --budget-ms 10000       # per-state solver budget
//   efc-verify --no-codegen            # skip the codegen hash check
//   efc-verify --native                # also check the dlopen'd .so hash
//   efc-verify --corpus-out DIR        # write counterexample seeds as
//                                      # regression-corpus entries
//   efc-verify --quiet                 # print only refutations + summary
//
// Exit status: 0 when nothing was refuted, 1 on any refutation, 2 on
// usage errors.  "unverified" states (budget exhaustion) are reported but
// do not fail the run — the differential fuzzer covers them
// probabilistically; see DESIGN.md "Certification".
//
//===----------------------------------------------------------------------===//

#include "bench/common/BenchCommon.h"
#include "verify/EquivChecker.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

using namespace efc;
using namespace efc::bench;

namespace {

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efc-verify: %s\n", Msg);
  fprintf(stderr,
          "usage: efc-verify [--suite fig9|fig10|fig11|fig13|all]\n"
          "                  [--pipeline SUBSTR] [--budget-ms N]\n"
          "                  [--no-codegen] [--native]\n"
          "                  [--corpus-out DIR] [--quiet]\n");
  return 2;
}

struct Entry {
  const char *Suite;
  const char *Name;
  std::function<BuiltPipeline()> Build;
};

std::vector<Entry> allEntries() {
  return {
      {"fig9", "base64-avg", [] { return makeBase64AvgPipeline(); }},
      {"fig9", "csv-max", [] { return makeCsvMaxPipeline(); }},
      {"fig9", "base64-delta", [] { return makeBase64DeltaPipeline(); }},
      {"fig9", "utf8-lines", [] { return makeUtf8LinesPipeline(); }},
      {"fig9", "chsi-cancer", [] { return makeChsiPipeline("cancer"); }},
      {"fig9", "chsi-births", [] { return makeChsiPipeline("births"); }},
      {"fig9", "chsi-deaths", [] { return makeChsiPipeline("deaths"); }},
      {"fig9", "sbo-employees", [] { return makeSboPipeline("employees"); }},
      {"fig9", "sbo-receipts", [] { return makeSboPipeline("receipts"); }},
      {"fig9", "sbo-payroll", [] { return makeSboPipeline("payroll"); }},
      {"fig9", "cc-id", [] { return makeCcIdPipeline(); }},
      {"fig10", "tpcdi-sql", [] { return makeTpcDiSqlPipeline(); }},
      {"fig10", "pir-proteins", [] { return makePirProteinsPipeline(); }},
      {"fig10", "dblp-oldest", [] { return makeDblpOldestPipeline(); }},
      {"fig10", "mondial", [] { return makeMondialPipeline(); }},
      {"fig11", "utf8-toint", [] { return makeUtf8ToIntPipeline(); }},
      {"fig13", "html-encode", [] { return makeHtmlEncodePipeline(); }},
  };
}

/// Writes one counterexample as a regression-corpus entry the
/// RegressionCorpusTest suite replays across all backends.
void writeCorpusEntry(const std::string &Dir, const std::string &Pipeline,
                      const verify::Counterexample &CE, unsigned Seq) {
  std::vector<uint64_t> In = CE.seedInput();
  if (In.empty())
    return;
  char Name[128];
  snprintf(Name, sizeof(Name), "%s/%s-%s-%u.corpus", Dir.c_str(),
           Pipeline.c_str(), CE.Part.c_str(), Seq);
  std::ofstream F(Name);
  if (!F) {
    fprintf(stderr, "efc-verify: cannot write %s\n", Name);
    return;
  }
  F << "# " << CE.str() << "\n";
  F << "pipeline=" << Pipeline << "\n";
  F << "input=";
  for (size_t I = 0; I < In.size(); ++I) {
    char Buf[24];
    snprintf(Buf, sizeof(Buf), "%s0x%llx", I ? "," : "",
             (unsigned long long)In[I]);
    F << Buf;
  }
  F << "\n";
  fprintf(stderr, "efc-verify: wrote %s\n", Name);
}

} // namespace

int main(int argc, char **argv) {
  std::string Suite = "all", Filter, CorpusDir;
  double BudgetMs = 5000;
  bool CheckCodegen = true, CheckNative = false, Quiet = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (A == "--suite") {
      if (const char *V = Next())
        Suite = V;
      else
        return usage("--suite needs a name");
    } else if (A == "--pipeline") {
      if (const char *V = Next())
        Filter = V;
      else
        return usage("--pipeline needs a substring");
    } else if (A == "--budget-ms") {
      if (const char *V = Next())
        BudgetMs = atof(V);
      else
        return usage("--budget-ms needs a number");
    } else if (A == "--no-codegen") {
      CheckCodegen = false;
    } else if (A == "--native") {
      CheckNative = true;
    } else if (A == "--corpus-out") {
      if (const char *V = Next())
        CorpusDir = V;
      else
        return usage("--corpus-out needs a directory");
    } else if (A == "--quiet") {
      Quiet = true;
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }
  if (Suite != "all" && Suite != "fig9" && Suite != "fig10" &&
      Suite != "fig11" && Suite != "fig13")
    return usage(("unknown suite '" + Suite + "'").c_str());

  unsigned Ran = 0, Certified = 0, Unverified = 0, Refuted = 0;
  for (const Entry &E : allEntries()) {
    if (Suite != "all" && Suite != E.Suite)
      continue;
    if (!Filter.empty() && std::string(E.Name).find(Filter) ==
                               std::string::npos)
      continue;
    BuiltPipeline P = E.Build();
    verify::CertOptions Opts;
    Opts.StateBudgetSeconds = BudgetMs / 1000.0;
    Opts.CheckCodegen = CheckCodegen;
    verify::CertReport R = verify::certifyPipeline(
        *P.Fused, *P.CompiledFused, P.FastPlan ? &*P.FastPlan : nullptr,
        Opts);
    ++Ran;
    bool Bad = R.Status == verify::CertStatus::Refuted;

    // Optionally tie in the deployed artifact: the dlopen'd .so must
    // re-export the classifier hash certification just recomputed.
    if (CheckNative && P.Native) {
      uint64_t SoHash = P.Native->classifierHash();
      if (SoHash && SoHash != R.ClassifierHash) {
        fprintf(stderr,
                "efc-verify: %-14s native .so hash 0x%016llx != certified "
                "0x%016llx\n",
                E.Name, (unsigned long long)SoHash,
                (unsigned long long)R.ClassifierHash);
        Bad = true;
      }
    }

    if (Bad)
      ++Refuted;
    else if (R.Status == verify::CertStatus::Certified)
      ++Certified;
    else
      ++Unverified;

    if (!Quiet || Bad)
      fprintf(stderr, "efc-verify: %-14s %s\n", E.Name,
              R.summary().c_str());
    unsigned Seq = 0;
    for (const verify::Counterexample &CE : R.Counterexamples) {
      fprintf(stderr, "efc-verify: %-14s counterexample: %s\n", E.Name,
              CE.str().c_str());
      if (!CorpusDir.empty())
        writeCorpusEntry(CorpusDir, E.Name, CE, Seq++);
    }
  }

  fprintf(stderr,
          "efc-verify: %u pipelines: %u certified, %u unverified, "
          "%u refuted\n",
          Ran, Certified, Unverified, Refuted);
  fprintf(stderr, "efc-verify: %s\n",
          pipeline::PassManager::cacheStats().str().c_str());
  if (!Ran) {
    fprintf(stderr, "efc-verify: no pipeline matched\n");
    return 2;
  }
  return Refuted ? 1 : 0;
}
