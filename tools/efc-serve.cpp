//===- tools/efc-serve.cpp - Streaming transducer server ------------------===//
//
// The serving half of the runtime subsystem: a Unix-socket server hosting
// many named StreamSessions on a fixed worker pool, with all pipeline
// builds deduplicated through the PipelineCache (see runtime/Server.h for
// the frame protocol).  The same binary is also the client, so a shell
// pipeline can exercise the server end to end:
//
//   efc-serve --socket /tmp/efc.sock --threads 4 &
//   efc-serve --socket /tmp/efc.sock --open s1 --backend native
//             --regex '(?:(?:[^,]*,){1}(?<v>[0-9]+),[^,]*)' --agg max
//   efc-serve --socket /tmp/efc.sock --feed s1 --file data.csv --chunk 7
//   efc-serve --socket /tmp/efc.sock --finish s1
//   efc-serve --socket /tmp/efc.sock --stats
//   efc-serve --socket /tmp/efc.sock --metrics
//   efc-serve --socket /tmp/efc.sock --shutdown
//
// --run NAME is the one-shot convenience: open + feed + finish.
// Feed output bytes go to stdout; diagnostics to stderr.
//
//===----------------------------------------------------------------------===//

#include "runtime/Server.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efc-serve: %s\n", Msg);
  fprintf(stderr,
          "usage: efc-serve --socket PATH [--threads N] [--queue N] "
          "[--cache N]\n"
          "       efc-serve --socket PATH --open NAME (--regex P | --xpath "
          "Q)\n"
          "                 [--agg max|min|avg|none] [--format "
          "decimal|lines|sql]\n"
          "                 [--backend vm|fastpath|native] [--no-rbbe] "
          "[--minimize]\n"
          "       efc-serve --socket PATH --feed NAME --file F [--chunk N]\n"
          "       efc-serve --socket PATH --finish NAME\n"
          "       efc-serve --socket PATH --close NAME\n"
          "       efc-serve --socket PATH --run NAME (--regex|--xpath ...) "
          "--file F [--chunk N]\n"
          "       efc-serve --socket PATH --stats | --metrics | "
          "--shutdown\n");
  return 2;
}

int connectTo(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

/// Sends one request and reads its response.  Returns false on transport
/// failure; *Ok reflects the response status, *Body its payload.
bool roundTrip(int Fd, const std::string &Req, bool *Ok, std::string *Body) {
  if (!sendFrame(Fd, Req))
    return false;
  std::string Resp;
  if (!recvFrame(Fd, Resp) || Resp.empty())
    return false;
  *Ok = Resp[0] == 'k';
  size_t Nl = Resp.find('\n');
  *Body = Nl == std::string::npos ? std::string() : Resp.substr(Nl + 1);
  return true;
}

/// Runs one request/response against the server; prints the body to
/// stdout ('k') or stderr ('e').
int simpleRequest(int Fd, const std::string &Req, bool BodyToStdout = true) {
  bool Ok = false;
  std::string Body;
  if (!roundTrip(Fd, Req, &Ok, &Body)) {
    fprintf(stderr, "efc-serve: connection lost\n");
    return 1;
  }
  if (!Ok) {
    fprintf(stderr, "efc-serve: %s\n", Body.c_str());
    return 1;
  }
  if (BodyToStdout && !Body.empty())
    fwrite(Body.data(), 1, Body.size(), stdout);
  return 0;
}

/// Streams \p Data in \p Chunk -byte frames, lockstep request/response so
/// server backpressure propagates naturally; output bytes to stdout.
int feedChunks(int Fd, const std::string &Name, const std::string &Data,
               size_t Chunk) {
  if (Chunk == 0)
    Chunk = 4096;
  for (size_t I = 0; I < Data.size() || (I == 0 && Data.empty());
       I += Chunk) {
    std::string Req = "F" + Name + "\n" + Data.substr(I, Chunk);
    if (int Rc = simpleRequest(Fd, Req))
      return Rc;
    if (Data.empty())
      break;
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket, Open, Feed, Finish, Close, Run, File;
  std::string Regex, XPath, Agg = "none", Format = "lines",
              Backend = "fastpath";
  unsigned Threads = 4;
  size_t Queue = 16, CacheCap = 32, Chunk = 4096;
  bool Stats = false, Metrics = false, Shutdown = false, DoRbbe = true,
       DoMinimize = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    auto NeedVal = [&](std::string &Dst) {
      const char *V = Next();
      if (V)
        Dst = V;
      return V != nullptr;
    };
    if (A == "--socket") {
      if (!NeedVal(Socket))
        return usage("--socket needs a path");
    } else if (A == "--open") {
      if (!NeedVal(Open))
        return usage("--open needs a name");
    } else if (A == "--feed") {
      if (!NeedVal(Feed))
        return usage("--feed needs a name");
    } else if (A == "--finish") {
      if (!NeedVal(Finish))
        return usage("--finish needs a name");
    } else if (A == "--close") {
      if (!NeedVal(Close))
        return usage("--close needs a name");
    } else if (A == "--run") {
      if (!NeedVal(Run))
        return usage("--run needs a name");
    } else if (A == "--file") {
      if (!NeedVal(File))
        return usage("--file needs a path");
    } else if (A == "--regex") {
      if (!NeedVal(Regex))
        return usage("--regex needs a pattern");
    } else if (A == "--xpath") {
      if (!NeedVal(XPath))
        return usage("--xpath needs a query");
    } else if (A == "--agg") {
      if (!NeedVal(Agg))
        return usage("--agg needs a kind");
    } else if (A == "--format") {
      if (!NeedVal(Format))
        return usage("--format needs a kind");
    } else if (A == "--backend") {
      if (!NeedVal(Backend))
        return usage("--backend needs vm|fastpath|native");
    } else if (A == "--threads") {
      const char *V = Next();
      if (!V)
        return usage("--threads needs a count");
      Threads = unsigned(std::max(1, atoi(V)));
    } else if (A == "--queue") {
      const char *V = Next();
      if (!V)
        return usage("--queue needs a bound");
      Queue = size_t(std::max(1, atoi(V)));
    } else if (A == "--cache") {
      const char *V = Next();
      if (!V)
        return usage("--cache needs a capacity");
      CacheCap = size_t(std::max(1, atoi(V)));
    } else if (A == "--chunk") {
      const char *V = Next();
      if (!V)
        return usage("--chunk needs a byte count");
      Chunk = size_t(std::max(1, atoi(V)));
    } else if (A == "--no-rbbe") {
      DoRbbe = false;
    } else if (A == "--minimize") {
      DoMinimize = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--metrics") {
      Metrics = true;
    } else if (A == "--shutdown") {
      Shutdown = true;
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }
  if (Socket.empty())
    return usage("--socket is required");

  bool ClientMode = !Open.empty() || !Feed.empty() || !Finish.empty() ||
                    !Close.empty() || !Run.empty() || Stats || Metrics ||
                    Shutdown;

  if (!ClientMode) {
    // Serve.
    ServerOptions O;
    O.SocketPath = Socket;
    O.Threads = Threads;
    O.MaxQueuePerSession = Queue;
    O.CacheCapacity = CacheCap;
    Server S(O);
    std::string Err;
    if (!S.start(&Err)) {
      fprintf(stderr, "efc-serve: %s\n", Err.c_str());
      return 1;
    }
    signal(SIGPIPE, SIG_IGN);
    fprintf(stderr, "efc-serve: listening on %s (%u workers)\n",
            Socket.c_str(), O.Threads);
    S.wait(); // until a --shutdown frame arrives
    fprintf(stderr, "efc-serve: shut down\n%s", S.statsText().c_str());
    return 0;
  }

  int Fd = connectTo(Socket);
  if (Fd < 0) {
    fprintf(stderr, "efc-serve: cannot connect to %s\n", Socket.c_str());
    return 1;
  }
  int Rc = 0;

  auto openSession = [&](const std::string &Name) {
    if (Regex.empty() == XPath.empty()) {
      Rc = usage("--open/--run needs exactly one of --regex / --xpath");
      return false;
    }
    PipelineSpec Spec;
    Spec.Kind = Regex.empty() ? PipelineSpec::Frontend::XPath
                              : PipelineSpec::Frontend::Regex;
    Spec.Pattern = Regex.empty() ? XPath : Regex;
    Spec.Agg = Agg;
    Spec.Format = Format;
    Spec.Rbbe = DoRbbe;
    Spec.Minimize = DoMinimize;
    std::string Req = "O" + Name + "\n" + Backend + "\n" + Spec.canonical();
    Rc = simpleRequest(Fd, Req);
    return Rc == 0;
  };

  auto readInput = [&](std::string &Data) {
    if (File.empty() || File == "-") {
      std::ostringstream Buf;
      Buf << std::cin.rdbuf();
      Data = Buf.str();
      return true;
    }
    std::ifstream F(File, std::ios::binary);
    if (!F) {
      fprintf(stderr, "efc-serve: cannot read %s\n", File.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << F.rdbuf();
    Data = Buf.str();
    return true;
  };

  if (!Run.empty()) {
    std::string Data;
    if (openSession(Run) && readInput(Data)) {
      Rc = feedChunks(Fd, Run, Data, Chunk);
      if (Rc == 0)
        Rc = simpleRequest(Fd, "E" + Run);
    } else if (Rc == 0) {
      Rc = 1;
    }
  } else {
    if (!Open.empty())
      (void)openSession(Open);
    if (Rc == 0 && !Feed.empty()) {
      std::string Data;
      Rc = readInput(Data) ? feedChunks(Fd, Feed, Data, Chunk) : 1;
    }
    if (Rc == 0 && !Finish.empty())
      Rc = simpleRequest(Fd, "E" + Finish);
    if (Rc == 0 && !Close.empty())
      Rc = simpleRequest(Fd, "C" + Close);
    if (Rc == 0 && Stats)
      Rc = simpleRequest(Fd, "S");
    if (Rc == 0 && Metrics)
      Rc = simpleRequest(Fd, "M");
    if (Rc == 0 && Shutdown)
      Rc = simpleRequest(Fd, "Q");
  }
  ::close(Fd);
  return Rc;
}
