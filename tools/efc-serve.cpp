//===- tools/efc-serve.cpp - Streaming transducer server ------------------===//
//
// The serving half of the runtime subsystem: a sharded epoll server
// hosting many named StreamSessions over Unix-domain and/or TCP sockets,
// with all pipeline builds deduplicated through the PipelineCache (see
// runtime/Server.h for the frame protocol and DESIGN.md "Serving
// transport" for the shard model).  The same binary is also the client,
// so a shell pipeline can exercise the server end to end:
//
//   efc-serve --socket /tmp/efc.sock --shards 4 --tcp 7333 &
//   efc-serve --socket /tmp/efc.sock --open s1 --backend native
//             --regex '(?:(?:[^,]*,){1}(?<v>[0-9]+),[^,]*)' --agg max
//   efc-serve --socket /tmp/efc.sock --feed s1 --file data.csv --chunk 7
//   efc-serve --socket /tmp/efc.sock --finish s1
//   efc-serve --tcp 7333 --stats        # same ops over TCP
//   efc-serve --socket /tmp/efc.sock --shutdown
//
// --run NAME is the one-shot convenience: open + feed + finish.
// Feed output bytes go to stdout; diagnostics to stderr.
//
// SIGTERM/SIGINT trigger the same graceful drain as --shutdown: stop
// accepting, execute the frames already received, flush replies (bounded
// by --drain-ms), then exit 0.
//
//===----------------------------------------------------------------------===//

#include "runtime/Server.h"
#include "support/EnvParse.h"

#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sstream>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace efc;
using namespace efc::runtime;

namespace {

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efc-serve: %s\n", Msg);
  fprintf(stderr,
          "usage: efc-serve [--socket PATH] [--tcp PORT [--host ADDR]]\n"
          "                 [--shards N] [--cache N] [--idle-ms MS] "
          "[--drain-ms MS]\n"
          "       efc-serve <endpoint> --open NAME (--regex P | --xpath "
          "Q)\n"
          "                 [--agg max|min|avg|none] [--format "
          "decimal|lines|sql]\n"
          "                 [--backend vm|fastpath|native] [--no-rbbe] "
          "[--minimize]\n"
          "       efc-serve <endpoint> --feed NAME --file F [--chunk N]\n"
          "       efc-serve <endpoint> --finish NAME\n"
          "       efc-serve <endpoint> --close NAME\n"
          "       efc-serve <endpoint> --run NAME (--regex|--xpath ...) "
          "--file F [--chunk N]\n"
          "       efc-serve <endpoint> --stats | --metrics | --shutdown\n"
          "where <endpoint> is --socket PATH or --tcp PORT [--host ADDR].\n"
          "--threads is accepted as an alias for --shards.\n");
  return 2;
}

int connectUnix(const std::string &Path) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

int connectTcp(const std::string &Host, uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  // A server bound to the wildcard is reached via loopback.
  const char *Target = Host == "0.0.0.0" ? "127.0.0.1" : Host.c_str();
  if (::inet_pton(AF_INET, Target, &Addr.sin_addr) != 1 ||
      ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
          0) {
    ::close(Fd);
    return -1;
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  return Fd;
}

/// Sends one request and reads its response.  Returns false on transport
/// failure; *Ok reflects the response status, *Body its payload.
bool roundTrip(int Fd, const std::string &Req, bool *Ok, std::string *Body) {
  if (!sendFrame(Fd, Req))
    return false;
  std::string Resp;
  if (!recvFrame(Fd, Resp) || Resp.empty())
    return false;
  *Ok = Resp[0] == 'k';
  size_t Nl = Resp.find('\n');
  *Body = Nl == std::string::npos ? std::string() : Resp.substr(Nl + 1);
  return true;
}

/// Runs one request/response against the server; prints the body to
/// stdout ('k') or stderr ('e').
int simpleRequest(int Fd, const std::string &Req, bool BodyToStdout = true) {
  bool Ok = false;
  std::string Body;
  if (!roundTrip(Fd, Req, &Ok, &Body)) {
    fprintf(stderr, "efc-serve: connection lost\n");
    return 1;
  }
  if (!Ok) {
    fprintf(stderr, "efc-serve: %s\n", Body.c_str());
    return 1;
  }
  if (BodyToStdout && !Body.empty())
    fwrite(Body.data(), 1, Body.size(), stdout);
  return 0;
}

/// Streams \p Data in \p Chunk -byte frames, lockstep request/response so
/// server backpressure propagates naturally; output bytes to stdout.
int feedChunks(int Fd, const std::string &Name, const std::string &Data,
               size_t Chunk) {
  if (Chunk == 0)
    Chunk = 4096;
  for (size_t I = 0; I < Data.size() || (I == 0 && Data.empty());
       I += Chunk) {
    std::string Req = "F" + Name + "\n" + Data.substr(I, Chunk);
    if (int Rc = simpleRequest(Fd, Req))
      return Rc;
    if (Data.empty())
      break;
  }
  return 0;
}

Server *ActiveServer = nullptr;

void onStopSignal(int) {
  // signalStop only writes one byte to the stop pipe: async-signal-safe.
  if (ActiveServer)
    ActiveServer->signalStop();
}

} // namespace

int main(int argc, char **argv) {
  std::string Socket, Open, Feed, Finish, Close, Run, File;
  std::string Regex, XPath, Agg = "none", Format = "lines",
              Backend = "fastpath";
  std::string Host = "0.0.0.0";
  unsigned Shards = 1;
  int TcpPort = -1; // -1: no TCP
  size_t CacheCap = 32, Chunk = 4096;
  uint64_t IdleMs = 0, DrainMs = 5000;
  bool Stats = false, Metrics = false, Shutdown = false, DoRbbe = true,
       DoMinimize = false;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    auto NeedVal = [&](std::string &Dst) {
      const char *V = Next();
      if (V)
        Dst = V;
      return V != nullptr;
    };
    if (A == "--socket") {
      if (!NeedVal(Socket))
        return usage("--socket needs a path");
    } else if (A == "--open") {
      if (!NeedVal(Open))
        return usage("--open needs a name");
    } else if (A == "--feed") {
      if (!NeedVal(Feed))
        return usage("--feed needs a name");
    } else if (A == "--finish") {
      if (!NeedVal(Finish))
        return usage("--finish needs a name");
    } else if (A == "--close") {
      if (!NeedVal(Close))
        return usage("--close needs a name");
    } else if (A == "--run") {
      if (!NeedVal(Run))
        return usage("--run needs a name");
    } else if (A == "--file") {
      if (!NeedVal(File))
        return usage("--file needs a path");
    } else if (A == "--regex") {
      if (!NeedVal(Regex))
        return usage("--regex needs a pattern");
    } else if (A == "--xpath") {
      if (!NeedVal(XPath))
        return usage("--xpath needs a query");
    } else if (A == "--agg") {
      if (!NeedVal(Agg))
        return usage("--agg needs a kind");
    } else if (A == "--format") {
      if (!NeedVal(Format))
        return usage("--format needs a kind");
    } else if (A == "--backend") {
      if (!NeedVal(Backend))
        return usage("--backend needs vm|fastpath|native");
    } else if (A == "--shards" || A == "--threads") {
      const char *V = Next();
      if (!V)
        return usage("--shards needs a count");
      uint64_t N = 0;
      if (!env::parseU64(V, N) || N == 0 || N > 1024)
        return usage("--shards needs a count in [1, 1024]");
      Shards = unsigned(N);
    } else if (A == "--tcp") {
      const char *V = Next();
      if (!V)
        return usage("--tcp needs a port (0 = kernel-assigned)");
      uint64_t N = 0;
      if (!env::parseU64(V, N) || N > 65535)
        return usage("--tcp needs a port in [0, 65535]");
      TcpPort = int(N);
    } else if (A == "--host") {
      if (!NeedVal(Host))
        return usage("--host needs an address");
    } else if (A == "--idle-ms") {
      const char *V = Next();
      if (!V)
        return usage("--idle-ms needs a duration");
      if (!env::parseU64(V, IdleMs))
        return usage("--idle-ms needs a duration in milliseconds");
    } else if (A == "--drain-ms") {
      const char *V = Next();
      if (!V)
        return usage("--drain-ms needs a duration");
      if (!env::parseU64(V, DrainMs))
        return usage("--drain-ms needs a duration in milliseconds");
    } else if (A == "--queue") {
      // Accepted for compatibility with the PR 2 worker-pool server;
      // backpressure is now byte-bounded per connection (see
      // ServerOptions::MaxConnBacklog), so the value is ignored.
      if (!Next())
        return usage("--queue needs a bound");
    } else if (A == "--cache") {
      const char *V = Next();
      if (!V)
        return usage("--cache needs a capacity");
      uint64_t N = 0;
      if (!env::parseU64(V, N) || N == 0)
        return usage("--cache needs a positive capacity");
      CacheCap = size_t(N);
    } else if (A == "--chunk") {
      const char *V = Next();
      if (!V)
        return usage("--chunk needs a byte count");
      uint64_t N = 0;
      if (!env::parseU64(V, N) || N == 0)
        return usage("--chunk needs a positive byte count");
      Chunk = size_t(N);
    } else if (A == "--no-rbbe") {
      DoRbbe = false;
    } else if (A == "--minimize") {
      DoMinimize = true;
    } else if (A == "--stats") {
      Stats = true;
    } else if (A == "--metrics") {
      Metrics = true;
    } else if (A == "--shutdown") {
      Shutdown = true;
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }
  if (Socket.empty() && TcpPort < 0)
    return usage("--socket or --tcp is required");

  bool ClientMode = !Open.empty() || !Feed.empty() || !Finish.empty() ||
                    !Close.empty() || !Run.empty() || Stats || Metrics ||
                    Shutdown;

  if (!ClientMode) {
    // Serve.
    ServerOptions O;
    O.SocketPath = Socket;
    O.Tcp = TcpPort >= 0;
    O.TcpPort = uint16_t(TcpPort < 0 ? 0 : TcpPort);
    O.TcpHost = Host;
    O.Shards = Shards;
    O.CacheCapacity = CacheCap;
    O.IdleMs = IdleMs;
    O.DrainMs = DrainMs;
    Server S(O);
    std::string Err;
    if (!S.start(&Err)) {
      fprintf(stderr, "efc-serve: %s\n", Err.c_str());
      return 1;
    }
    signal(SIGPIPE, SIG_IGN);
    ActiveServer = &S;
    struct sigaction Sa{};
    Sa.sa_handler = onStopSignal;
    sigaction(SIGTERM, &Sa, nullptr);
    sigaction(SIGINT, &Sa, nullptr);
    std::string Where;
    if (!Socket.empty())
      Where = Socket;
    if (O.Tcp) {
      if (!Where.empty())
        Where += " and ";
      Where += Host + ":" + std::to_string(S.tcpPort()) +
               (S.tcpReusePort() ? " (reuseport)" : " (fd handoff)");
    }
    fprintf(stderr, "efc-serve: listening on %s (%u shard%s)\n",
            Where.c_str(), Shards, Shards == 1 ? "" : "s");
    S.wait(); // until --shutdown / SIGTERM / SIGINT completes the drain
    ActiveServer = nullptr;
    fprintf(stderr, "efc-serve: shut down\n%s", S.statsText().c_str());
    return 0;
  }

  int Fd = Socket.empty() ? connectTcp(Host, uint16_t(TcpPort))
                          : connectUnix(Socket);
  if (Fd < 0) {
    fprintf(stderr, "efc-serve: cannot connect to %s\n",
            Socket.empty()
                ? (Host + ":" + std::to_string(TcpPort)).c_str()
                : Socket.c_str());
    return 1;
  }
  int Rc = 0;

  auto openSession = [&](const std::string &Name) {
    if (Regex.empty() == XPath.empty()) {
      Rc = usage("--open/--run needs exactly one of --regex / --xpath");
      return false;
    }
    PipelineSpec Spec;
    Spec.Kind = Regex.empty() ? PipelineSpec::Frontend::XPath
                              : PipelineSpec::Frontend::Regex;
    Spec.Pattern = Regex.empty() ? XPath : Regex;
    Spec.Agg = Agg;
    Spec.Format = Format;
    Spec.Rbbe = DoRbbe;
    Spec.Minimize = DoMinimize;
    std::string Req = "O" + Name + "\n" + Backend + "\n" + Spec.canonical();
    Rc = simpleRequest(Fd, Req);
    return Rc == 0;
  };

  auto readInput = [&](std::string &Data) {
    if (File.empty() || File == "-") {
      std::ostringstream Buf;
      Buf << std::cin.rdbuf();
      Data = Buf.str();
      return true;
    }
    std::ifstream F(File, std::ios::binary);
    if (!F) {
      fprintf(stderr, "efc-serve: cannot read %s\n", File.c_str());
      return false;
    }
    std::ostringstream Buf;
    Buf << F.rdbuf();
    Data = Buf.str();
    return true;
  };

  if (!Run.empty()) {
    std::string Data;
    if (openSession(Run) && readInput(Data)) {
      Rc = feedChunks(Fd, Run, Data, Chunk);
      if (Rc == 0)
        Rc = simpleRequest(Fd, "E" + Run);
    } else if (Rc == 0) {
      Rc = 1;
    }
  } else {
    if (!Open.empty())
      (void)openSession(Open);
    if (Rc == 0 && !Feed.empty()) {
      std::string Data;
      Rc = readInput(Data) ? feedChunks(Fd, Feed, Data, Chunk) : 1;
    }
    if (Rc == 0 && !Finish.empty())
      Rc = simpleRequest(Fd, "E" + Finish);
    if (Rc == 0 && !Close.empty())
      Rc = simpleRequest(Fd, "C" + Close);
    if (Rc == 0 && Stats)
      Rc = simpleRequest(Fd, "S");
    if (Rc == 0 && Metrics)
      Rc = simpleRequest(Fd, "M");
    if (Rc == 0 && Shutdown)
      Rc = simpleRequest(Fd, "Q");
  }
  ::close(Fd);
  return Rc;
}
