//===- tools/efc-fuzz.cpp - Differential fuzzing harness ------------------===//
//
// Long-running cross-backend fuzz campaigns for the equational claims the
// repo is built on (⟦A ⊗ B⟧ = ⟦B⟧ ∘ ⟦A⟧, RBBE semantics preservation, VM
// and codegen fidelity).  Each iteration draws a random multi-stage
// pipeline and a batch of adversarial plus random inputs, then checks
// every enabled backend against the composed reference interpretation via
// the shared oracle (tests/common/Oracle.h).  Failures are greedily shrunk
// and reported with a replayable per-iteration seed.
//
//   efc-fuzz --seed 7 --iters 2000
//   efc-fuzz --replay 0x1234abcd --backends all   # reproduce one failure
//   efc-fuzz --iters 500 --backends all --native-every 10
//   EFC_FUZZ_SEED=0xbad efc-fuzz --iters 100      # env seed (no --seed)
//
//===----------------------------------------------------------------------===//

#include "bst/BstPrint.h"
#include "common/Oracle.h"
#include "common/RandomBst.h"
#include "support/Stopwatch.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace efc;
using namespace efc::testing;

namespace {

struct FuzzConfig {
  uint64_t Seed = 1;
  uint64_t Iters = 200;
  bool Replay = false;       // --replay: Seed is a per-iteration seed
  unsigned MaxStates = 4;
  unsigned MaxStages = 3;
  unsigned MaxLen = 12;
  unsigned InputsPerPipeline = 6;
  unsigned ElemWidth = 0;    // 0 = rotate over 4/8/16
  unsigned Backends = BK_Default;
  unsigned NativeEvery = 25; // native .so compiles are slow; sample them
  bool Shrink = true;
  unsigned ShrinkBudget = 4000;
  double TimeBudget = 0;     // seconds; 0 = unlimited
  bool Quiet = false;
};

struct FuzzStats {
  uint64_t Iterations = 0;
  uint64_t Checks = 0;
  uint64_t NativeIterations = 0;
};

int usage(const char *Msg = nullptr) {
  if (Msg)
    fprintf(stderr, "efc-fuzz: %s\n", Msg);
  fprintf(stderr,
          "usage: efc-fuzz [--seed S] [--iters N] [--replay S]\n"
          "                [--max-states K] [--max-stages K] [--max-len L]\n"
          "                [--inputs N] [--elem-width 4|8|16]\n"
          "                [--backends vm,fused,fusedvm,rbbe,rbbevm,fastpath,"
          "rbbefast,fastskip,native|default|all]\n"
          "                [--native-every N] [--no-shrink]\n"
          "                [--shrink-budget N] [--time-budget SEC] "
          "[--quiet]\n"
          "\n"
          "Checks every backend against the composed reference interpreter\n"
          "on random multi-stage pipelines.  Exit status: 0 = all agree,\n"
          "1 = disagreement found, 2 = bad usage.\n"
          "EFC_FUZZ_SEED sets the master seed when --seed/--replay is "
          "absent.\n");
  return 2;
}

/// Decorrelated per-iteration seed; printed on failure so one iteration
/// can be replayed in isolation via --replay.
uint64_t iterationSeed(uint64_t Master, uint64_t Iter) {
  SplitMix64 M(Master ^ (0x9e3779b97f4a7c15ull * (Iter + 1)));
  return M.next();
}

void printFailure(const FuzzConfig &C, uint64_t Iter, uint64_t IterSeed,
                  unsigned Mask, const std::vector<Bst> &Stages,
                  const std::vector<Value> &Input, const Disagreement &D) {
  fprintf(stderr, "efc-fuzz: DISAGREEMENT at iteration %" PRIu64
                  " (seed 0x%" PRIx64 ")\n",
          Iter, IterSeed);
  fprintf(stderr, "  pipeline: %s\n",
          pipelineSummary(Stages, Input).c_str());
  fprintf(stderr, "  %s\n", D.str().c_str());
  char SeedHex[32];
  snprintf(SeedHex, sizeof(SeedHex), "0x%" PRIx64, IterSeed);
  std::string Replay = std::string("efc-fuzz --replay ") + SeedHex +
                       " --max-states " + std::to_string(C.MaxStates) +
                       " --max-stages " + std::to_string(C.MaxStages) +
                       " --max-len " + std::to_string(C.MaxLen) +
                       " --inputs " + std::to_string(C.InputsPerPipeline);
  if (C.ElemWidth)
    Replay += " --elem-width " + std::to_string(C.ElemWidth);
  Replay += " --backends " + backendNames(Mask);
  fprintf(stderr, "  replay: %s\n", Replay.c_str());
}

void printShrunk(const ShrinkResult &R) {
  fprintf(stderr, "  shrunk: %s (%u attempts, %u accepted)\n",
          pipelineSummary(R.Stages, R.Input).c_str(), R.Attempts,
          R.Accepted);
  fprintf(stderr, "  failure: %s\n", R.Failure.str().c_str());
  fprintf(stderr, "  input: %s\n", renderValues(R.Input).c_str());
  for (size_t I = 0; I < R.Stages.size(); ++I)
    fprintf(stderr, "  stage %zu:\n%s", I,
            bstToString(R.Stages[I]).c_str());
}

/// Runs one iteration; returns true when a disagreement was found (and
/// reported).
bool runIteration(const FuzzConfig &C, uint64_t Iter, uint64_t IterSeed,
                  bool AttachNative, FuzzStats &St) {
  SplitMix64 Rng(IterSeed);
  TermContext Ctx;
  RandomBstGen Gen(Ctx, Rng);

  GenOptions O;
  static const unsigned Widths[3] = {4, 8, 16};
  O.ElemWidth = C.ElemWidth ? C.ElemWidth : Widths[Rng.below(3)];
  O.MaxRegTupleArity = 1 + unsigned(Rng.below(3)); // scalar .. 3-tuple
  unsigned NumStages = 1 + unsigned(Rng.below(C.MaxStages));

  unsigned Mask = C.Backends;
  if (!AttachNative)
    Mask &= ~unsigned(BK_Native);

  std::vector<Bst> Stages = Gen.makePipeline(NumStages, C.MaxStates, O);
  Oracle Or(Stages, Mask);
  if (AttachNative) {
    ++St.NativeIterations;
    static bool WarnedNative = false;
    if (!Or.nativeAvailable() && !WarnedNative) {
      WarnedNative = true;
      fprintf(stderr, "efc-fuzz: native backend unavailable (%s); skipping\n",
              Or.nativeError().c_str());
    }
  }

  std::vector<std::vector<Value>> Inputs;
  for (unsigned K = 0; K < RandomBstGen::NumAdversarialKinds; ++K)
    Inputs.push_back(Gen.adversarialInput(K, C.MaxLen, O.ElemWidth));
  for (unsigned I = 0; I < C.InputsPerPipeline; ++I)
    Inputs.push_back(Gen.randomInput(C.MaxLen, O.ElemWidth));

  for (const std::vector<Value> &In : Inputs) {
    ++St.Checks;
    std::optional<Disagreement> D = Or.check(In);
    if (!D)
      continue;
    printFailure(C, Iter, IterSeed, Mask, Or.stages(), In, *D);
    if (C.Shrink) {
      // Shrink against the diverging backend alone: re-checking every
      // backend would rebuild the fused/RBBE artifacts (and for native,
      // run the host compiler) on each of thousands of candidates.
      unsigned ShrinkMask = parseBackends(D->Backend);
      if (!ShrinkMask)
        ShrinkMask = Mask & ~unsigned(BK_Native);
      fprintf(stderr, "  shrinking (budget %u)...\n", C.ShrinkBudget);
      ShrinkResult R =
          shrink(Or.stages(), In, ShrinkMask, C.ShrinkBudget);
      printShrunk(R);
    }
    return true;
  }
  return false;
}

bool parseU64(const char *S, uint64_t &Out) {
  if (!S || !*S)
    return false;
  char *End = nullptr;
  Out = strtoull(S, &End, 0);
  return End && *End == '\0';
}

} // namespace

int main(int argc, char **argv) {
  FuzzConfig C;
  bool SeedGiven = false;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    uint64_t N = 0;
    if (A == "--seed") {
      if (!parseU64(Next(), C.Seed))
        return usage("--seed needs a number");
      SeedGiven = true;
    } else if (A == "--replay") {
      if (!parseU64(Next(), C.Seed))
        return usage("--replay needs a number");
      C.Replay = true;
      C.Iters = 1;
      SeedGiven = true;
    } else if (A == "--iters") {
      if (!parseU64(Next(), C.Iters))
        return usage("--iters needs a number");
    } else if (A == "--max-states") {
      if (!parseU64(Next(), N) || N == 0)
        return usage("--max-states needs a positive number");
      C.MaxStates = unsigned(N);
    } else if (A == "--max-stages") {
      if (!parseU64(Next(), N) || N == 0)
        return usage("--max-stages needs a positive number");
      C.MaxStages = unsigned(N);
    } else if (A == "--max-len") {
      if (!parseU64(Next(), N))
        return usage("--max-len needs a number");
      C.MaxLen = unsigned(N);
    } else if (A == "--inputs") {
      if (!parseU64(Next(), N))
        return usage("--inputs needs a number");
      C.InputsPerPipeline = unsigned(N);
    } else if (A == "--elem-width") {
      if (!parseU64(Next(), N) || (N != 4 && N != 8 && N != 16))
        return usage("--elem-width must be 4, 8 or 16");
      C.ElemWidth = unsigned(N);
    } else if (A == "--backends") {
      const char *V = Next();
      if (!V)
        return usage("--backends needs a list");
      std::string Err;
      C.Backends = parseBackends(V, &Err);
      if (!C.Backends)
        return usage(Err.c_str());
    } else if (A == "--native-every") {
      if (!parseU64(Next(), N))
        return usage("--native-every needs a number");
      C.NativeEvery = unsigned(N);
    } else if (A == "--shrink") {
      C.Shrink = true;
    } else if (A == "--no-shrink") {
      C.Shrink = false;
    } else if (A == "--shrink-budget") {
      if (!parseU64(Next(), N))
        return usage("--shrink-budget needs a number");
      C.ShrinkBudget = unsigned(N);
    } else if (A == "--time-budget") {
      const char *V = Next();
      if (!V)
        return usage("--time-budget needs seconds");
      C.TimeBudget = atof(V);
    } else if (A == "--quiet") {
      C.Quiet = true;
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else {
      return usage(("unknown option '" + A + "'").c_str());
    }
  }

  // The master seed obeys the same override as the gtest property suites
  // (tests/common/FuzzSeed.h): EFC_FUZZ_SEED steers a campaign without
  // editing scripts, but never overrides an explicit --seed / --replay.
  if (!SeedGiven) {
    if (const char *E = std::getenv("EFC_FUZZ_SEED"); E && *E) {
      if (!parseU64(E, C.Seed))
        return usage("EFC_FUZZ_SEED is not a number");
      if (!C.Quiet)
        fprintf(stderr, "efc-fuzz: seed 0x%" PRIx64 " from EFC_FUZZ_SEED\n",
                C.Seed);
    }
  }

  Stopwatch Timer;
  FuzzStats St;
  bool Failed = false;
  for (uint64_t Iter = 0; Iter < C.Iters; ++Iter) {
    if (C.TimeBudget > 0 && Timer.seconds() > C.TimeBudget)
      break;
    uint64_t IterSeed = C.Replay ? C.Seed : iterationSeed(C.Seed, Iter);
    bool AttachNative = (C.Backends & BK_Native) &&
                        (C.Replay || (C.NativeEvery > 0 &&
                                      Iter % C.NativeEvery == 0));
    ++St.Iterations;
    if (runIteration(C, Iter, IterSeed, AttachNative, St)) {
      Failed = true;
      break;
    }
    if (!C.Quiet && (Iter + 1) % 500 == 0)
      fprintf(stderr, "efc-fuzz: ... %" PRIu64 " iterations, %" PRIu64
                      " checks (%.1fs)\n",
              Iter + 1, St.Checks, Timer.seconds());
  }

  if (!C.Quiet)
    fprintf(stderr,
            "efc-fuzz: %" PRIu64 " iterations, %" PRIu64 " checks, %" PRIu64
            " with native backend, %s (%.2fs, seed 0x%" PRIx64 ", "
            "backends %s)\n",
            St.Iterations, St.Checks, St.NativeIterations,
            Failed ? "1 disagreement" : "0 disagreements", Timer.seconds(),
            C.Seed, backendNames(C.Backends).c_str());
  return Failed ? 1 : 0;
}
