#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
# ci.sh — the whole gate in one script.
#
#   1. Tier-1 verify (ROADMAP.md): configure, build, full ctest.
#   2. Scalar-dispatch leg: the tier-1 label re-runs with EFC_SIMD=scalar,
#      forcing every vectorized scanner (nibble shufti, run kernels,
#      spec pairs) down to the portable paths — the SIMD kernels must be
#      a pure optimization, never load-bearing.  Skippable with
#      EFC_SKIP_SCALAR=1.
#   3. Sanitizer job: a second build with -DEFC_SANITIZE=ON (ASan+UBSan)
#      runs the tier-1 label — the fast-path boundary tests in particular
#      are written so any vectorized-scan overread trips ASan.  Skippable
#      with EFC_SKIP_ASAN=1 (roughly doubles build time).
#   4. ThreadSanitizer job: a third build with -DEFC_SANITIZE=thread runs
#      the `parallel` label — the data-parallel executor's speculation
#      worker pool and ordered stitch under TSan.  Skippable with
#      EFC_SKIP_TSAN=1.
#   5. efc-serve smoke test: start a server, stream a CSV pipeline at it in
#      7-byte chunks, and require byte-identical output to one-shot
#      `efcc --run` on the same file.
#   6. Fast-path gate + throughput smoke: `efcc --backend fastpath` must be
#      byte-identical to `--backend vm` on a fig9-style CSV corpus, then a
#      small fig9 benchmark run refreshes BENCH_throughput.json at the
#      repo root so the recorded numbers track HEAD.  The fresh numbers
#      are gated against the committed ones: any (pipeline, backend) row
#      dropping more than EFC_BENCH_GATE_PCT percent (default 20) fails
#      the script; EFC_BENCH_GATE_PCT=0 disables the gate (noisy shared
#      machines).  Rows carry the hardware that measured them (nproc +
#      detected SIMD level); rows recorded on different hardware are
#      skipped rather than compared — a repo benchmarked on an AVX-512
#      box must not fail CI on an SSE2 one.  Because the hot loops now
#      carry metrics folds and trace-enabled checks, this gate doubles as
#      the observability overhead gate: instrumentation that slows a
#      backend past the threshold fails here.
#   7. Codegen portability check: `efcc --emit-cpp` output (which embeds
#      the AVX2/AVX-512 nibble scanners under GCC target attributes) must
#      compile both with -mavx2 and with AVX disabled entirely.
#   8. Parallel executor smoke: an 8 MB CSV through `efcc --parallel 4`
#      must be byte-identical to the sequential run of the same file —
#      the chunk/speculate/replay path end to end at a realistic size.
#   9. Runtime-cache bench: cache-hit vs cache-miss request latency
#      (asserts internally that a simulated restart hits the on-disk
#      native artifact cache instead of re-invoking the host compiler).
#  10. Backend-equivalence certification: `efc-verify` proves VM bytecode,
#      fast-path tables/kernels/nibble encodings/wide tables/spec pairs
#      and the codegen classifier hash agree for every
#      fig9/fig10/fig11/fig13 pipeline; any refutation fails the script
#      (exit 1).  "unverified" states (budget exhaustion) pass — the fuzz
#      smoke above covers them probabilistically.  The same obligations
#      are unit-tested under `ctest -L certify` (mutation injection,
#      corpus replay), which already ran as part of tier-1.
#
# Usage: ./ci.sh [build-dir]     (default: build)
#===------------------------------------------------------------------------===#
set -euo pipefail
cd "$(dirname "$0")"
BUILD=${1:-build}

echo "== [1/10] tier-1 verify =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)

echo "== [2/10] EFC_SIMD=scalar tier-1 (vector kernels forced off) =="
if [ "${EFC_SKIP_SCALAR:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_SCALAR=1)"
else
  (cd "$BUILD" && EFC_SIMD=scalar ctest --output-on-failure -j -L tier1)
fi

echo "== [3/10] ASan+UBSan tier-1 =="
if [ "${EFC_SKIP_ASAN:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_ASAN=1)"
else
  cmake -B "$BUILD-asan" -S . -DEFC_SANITIZE=ON
  cmake --build "$BUILD-asan" -j
  # The native backend dlopens uninstrumented artifacts; that direction
  # (clean .so into an ASan process) is supported, but don't let a stale
  # instrumented cache cross builds.
  (cd "$BUILD-asan" && EFC_CACHE_DIR=$(mktemp -d) \
     ctest --output-on-failure -j -L tier1)
fi

echo "== [4/10] TSan parallel suite =="
if [ "${EFC_SKIP_TSAN:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_TSAN=1)"
else
  cmake -B "$BUILD-tsan" -S . -DEFC_SANITIZE=thread
  cmake --build "$BUILD-tsan" -j --target parallel_test
  (cd "$BUILD-tsan" && ctest --output-on-failure -j -L parallel)
fi

echo "== [5/10] efc-serve smoke test =="
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT
SOCK="$SCRATCH/efc.sock"
PATTERN='(?:(?:[^,\n]*,){1}(?<v>\d+),[^\n]*\n)*'
printf 'a,17,x\nb,99,y\nc,40,z\nd,63,w\n' > "$SCRATCH/rows.csv"

"$BUILD/tools/efc-serve" --socket "$SOCK" --threads 2 &
SERVER=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server never bound $SOCK" >&2; exit 1; }

STREAMED=$("$BUILD/tools/efc-serve" --socket "$SOCK" --run smoke \
  --regex "$PATTERN" --agg max --format decimal \
  --file "$SCRATCH/rows.csv" --chunk 7)
"$BUILD/tools/efc-serve" --socket "$SOCK" --shutdown
wait "$SERVER"

ONESHOT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg max --format decimal \
  --run "$SCRATCH/rows.csv")
if [ "$STREAMED" != "$ONESHOT" ]; then
  echo "smoke test mismatch: streamed='$STREAMED' one-shot='$ONESHOT'" >&2
  exit 1
fi
echo "streamed 7-byte chunks == efcc --run: '$STREAMED'"

echo "== [6/10] fast-path divergence gate + throughput smoke =="
# Deterministic fig9-style CSV corpus, big enough to cross chunk and
# buffer-growth boundaries.
for i in $(seq 0 4999); do
  printf 'r%d,%d,x%d\n' "$i" $(( (i * 37 + 11) % 100000 )) "$i"
done > "$SCRATCH/corpus.csv"
for AGG in max min avg; do
  VM_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg "$AGG" \
    --format decimal --backend vm --run "$SCRATCH/corpus.csv")
  FP_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg "$AGG" \
    --format decimal --backend fastpath --run "$SCRATCH/corpus.csv")
  if [ "$VM_OUT" != "$FP_OUT" ]; then
    echo "fast path diverges from VM (agg=$AGG): vm='$VM_OUT'" \
         "fastpath='$FP_OUT'" >&2
    exit 1
  fi
done
echo "fastpath == vm on corpus.csv (max/min/avg)"
# Refresh the committed throughput record for a few pipelines at 1 MB.
# The fresh rows merge into a scratch copy first and are compared against
# the committed file per (pipeline, backend); only when the gate passes
# does the scratch copy replace BENCH_throughput.json, so a failed gate
# leaves the committed numbers untouched.
GATE_PCT=${EFC_BENCH_GATE_PCT:-20}
cp BENCH_throughput.json "$SCRATCH/throughput.json" 2>/dev/null || true
EFC_BENCH_MB=1 EFC_BENCH_PIPELINES=CSV-max,UTF8-lines,CC-id \
  EFC_BENCH_JSON="$SCRATCH/throughput.json" \
  "$BUILD/bench/fig9_pipelines" \
  --benchmark_filter='/(Fused|FusedFastPath)$' --benchmark_min_time=0.1s
# The committed rows carry the hardware that measured them; compare only
# rows recorded on a matching machine (same detected SIMD level, same
# logical core count) so runs on weaker/stronger boxes skip instead of
# tripping the gate.  The ISA ladder mirrors src/vm/Simd.cpp detection.
CUR_NPROC=$(nproc)
if grep -qw avx512f /proc/cpuinfo && grep -qw avx512bw /proc/cpuinfo \
    && grep -qw avx512vl /proc/cpuinfo; then CUR_ISA=avx512
elif grep -qw avx2 /proc/cpuinfo; then CUR_ISA=avx2
else CUR_ISA=sse2; fi
if [ "$GATE_PCT" != "0" ] && [ -f BENCH_throughput.json ]; then
  awk -v pct="$GATE_PCT" -v nproc="$CUR_NPROC" -v isa="$CUR_ISA" '
    function key(line) {
      match(line, /"pipeline": "[^"]*"/)
      p = substr(line, RSTART + 13, RLENGTH - 14)
      match(line, /"backend": "[^"]*"/)
      b = substr(line, RSTART + 12, RLENGTH - 13)
      return p "/" b
    }
    function mbps(line) {
      match(line, /"mb_per_s": [0-9.]+/)
      return substr(line, RSTART + 12, RLENGTH - 12) + 0
    }
    function isa_of(line) {
      if (match(line, /"isa": "[^"]*"/))
        return substr(line, RSTART + 8, RLENGTH - 9)
      return ""
    }
    function nproc_of(line) {
      if (match(line, /"nproc": [0-9]+/))
        return substr(line, RSTART + 9, RLENGTH - 9) + 0
      return 0
    }
    # Rows predating hardware stamps (no isa/nproc fields) still gate.
    function foreign(line,  i, n) {
      i = isa_of(line); n = nproc_of(line)
      return (i != "" && i != isa) || (n != 0 && n != nproc)
    }
    NR == FNR {
      if (/"pipeline"/) {
        if (foreign($0))
          printf "  %-28s skipped (recorded on %s/%d-core, this machine" \
                 " %s/%d-core)\n", key($0), isa_of($0), nproc_of($0), \
                 isa, nproc
        else
          old[key($0)] = mbps($0)
      }
      next
    }
    /"pipeline"/ {
      k = key($0); cur = mbps($0)
      if (k in old && old[k] > 0) {
        drop = (old[k] - cur) / old[k] * 100
        printf "  %-28s %8.2f -> %8.2f MB/s (%+.1f%%)\n", k, old[k], cur, -drop
        if (drop > pct) bad = bad "\n  " k
      }
    }
    END {
      if (bad != "") { printf "throughput regression > %s%%:%s\n", pct, bad
                       exit 1 }
    }
  ' BENCH_throughput.json "$SCRATCH/throughput.json" || {
    echo "throughput gate failed (override: EFC_BENCH_GATE_PCT=0 ./ci.sh," \
         "or a higher percentage for a known-noisy machine)" >&2
    exit 1
  }
fi
mv "$SCRATCH/throughput.json" BENCH_throughput.json

echo "== [7/10] codegen portability (emitted C++ with and without AVX) =="
# The emitted translation unit embeds AVX2/AVX-512 nibble scanners under
# GCC target attributes plus a scalar fallback; it must build on a plain
# SSE2 toolchain configuration and under -mavx2 alike.
"$BUILD/tools/efcc" --regex "$PATTERN" --agg max --format decimal \
  --emit-cpp "$SCRATCH/emitted.cpp"
CXX_PORT=${CXX:-c++}
"$CXX_PORT" -std=c++17 -O2 -mavx2 -c "$SCRATCH/emitted.cpp" \
  -o "$SCRATCH/emitted_avx2.o"
"$CXX_PORT" -std=c++17 -O2 -mno-avx2 -mno-avx -c "$SCRATCH/emitted.cpp" \
  -o "$SCRATCH/emitted_noavx.o"
echo "emitted C++ compiles under -mavx2 and -mno-avx2 -mno-avx"

echo "== [8/10] parallel executor smoke (8 MB, 4 threads) =="
awk 'BEGIN { for (i = 0; i < 400000; i++)
  printf "row%d,%d,pad%d\n", i, (i * 37 + 11) % 1000000, i }' \
  > "$SCRATCH/par.csv"
SEQ_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg max \
  --format decimal --run "$SCRATCH/par.csv")
PAR_OUT=$(EFC_PARALLEL_MIN_BYTES=1048576 "$BUILD/tools/efcc" \
  --regex "$PATTERN" --agg max --format decimal \
  --run "$SCRATCH/par.csv" --parallel 4)
if [ "$SEQ_OUT" != "$PAR_OUT" ]; then
  echo "parallel diverges from sequential: seq='$SEQ_OUT'" \
       "par='$PAR_OUT'" >&2
  exit 1
fi
echo "efcc --parallel 4 == sequential on 8 MB CSV: '$PAR_OUT'"

echo "== [9/10] cache-hit vs cache-miss latency =="
"$BUILD/bench/runtime_cache"

echo "== [10/10] backend-equivalence certification =="
"$BUILD/tools/efc-verify" --quiet

echo "== ci.sh: all green =="
