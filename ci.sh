#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
# ci.sh — the whole gate in one script.
#
#   1. Tier-1 verify (ROADMAP.md): configure, build, full ctest.
#   2. efc-serve smoke test: start a server, stream a CSV pipeline at it in
#      7-byte chunks, and require byte-identical output to one-shot
#      `efcc --run` on the same file.
#   3. Runtime-cache bench: cache-hit vs cache-miss request latency
#      (asserts internally that a simulated restart hits the on-disk
#      native artifact cache instead of re-invoking the host compiler).
#
# Usage: ./ci.sh [build-dir]     (default: build)
#===------------------------------------------------------------------------===#
set -euo pipefail
cd "$(dirname "$0")"
BUILD=${1:-build}

echo "== [1/3] tier-1 verify =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)

echo "== [2/3] efc-serve smoke test =="
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT
SOCK="$SCRATCH/efc.sock"
PATTERN='(?:(?:[^,\n]*,){1}(?<v>\d+),[^\n]*\n)*'
printf 'a,17,x\nb,99,y\nc,40,z\nd,63,w\n' > "$SCRATCH/rows.csv"

"$BUILD/tools/efc-serve" --socket "$SOCK" --threads 2 &
SERVER=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server never bound $SOCK" >&2; exit 1; }

STREAMED=$("$BUILD/tools/efc-serve" --socket "$SOCK" --run smoke \
  --regex "$PATTERN" --agg max --format decimal \
  --file "$SCRATCH/rows.csv" --chunk 7)
"$BUILD/tools/efc-serve" --socket "$SOCK" --shutdown
wait "$SERVER"

ONESHOT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg max --format decimal \
  --run "$SCRATCH/rows.csv")
if [ "$STREAMED" != "$ONESHOT" ]; then
  echo "smoke test mismatch: streamed='$STREAMED' one-shot='$ONESHOT'" >&2
  exit 1
fi
echo "streamed 7-byte chunks == efcc --run: '$STREAMED'"

echo "== [3/3] cache-hit vs cache-miss latency =="
"$BUILD/bench/runtime_cache"

echo "== ci.sh: all green =="
