#!/usr/bin/env bash
#===------------------------------------------------------------------------===#
# ci.sh — the whole gate in one script.
#
#   1. Tier-1 verify (ROADMAP.md): configure, build, full ctest.
#   2. Scalar-dispatch leg: the tier-1 label re-runs with EFC_SIMD=scalar,
#      forcing every vectorized scanner (nibble shufti, run kernels,
#      spec pairs) down to the portable paths — the SIMD kernels must be
#      a pure optimization, never load-bearing.  Skippable with
#      EFC_SKIP_SCALAR=1.
#   3. EFC_VERIFY_IR leg: the tier-1 label re-runs with EFC_VERIFY_IR=1,
#      so every compile in the suite checks the between-pass IR
#      invariants (well-formedness, classifier-hash determinism, type
#      preservation, state/branch monotonicity — pipeline/PassManager.h).
#      Skippable with EFC_SKIP_VERIFYIR=1.
#   4. Sanitizer job: a second build with -DEFC_SANITIZE=ON (ASan+UBSan)
#      runs the tier-1 label — the fast-path boundary tests in particular
#      are written so any vectorized-scan overread trips ASan.  Skippable
#      with EFC_SKIP_ASAN=1 (roughly doubles build time).
#   5. ThreadSanitizer job: a third build with -DEFC_SANITIZE=thread runs
#      the `parallel` label — the data-parallel executor's speculation
#      worker pool and ordered stitch under TSan — and the `serve` label:
#      the sharded server's event loops, cross-shard mailboxes and fd
#      ownership (including the 100+ interleaved-connection test) under
#      the same build.  Skippable with EFC_SKIP_TSAN=1.
#   6. efc-serve smoke test: start a server, stream a CSV pipeline at it in
#      7-byte chunks, and require byte-identical output to one-shot
#      `efcc --run` on the same file.
#   7. Serving-load smoke + latency gate: bench/serve_load drives 1000
#      concurrent sessions over 50 connections against a 1-shard
#      in-process server, byte-verifies every reply against the
#      sequential oracle (exit 1 on any loss or divergence), and merges
#      the p50/p99/MB/s row into BENCH_serve.json.  The fresh row is
#      gated against the committed one — p99 regressing by more than
#      EFC_SERVE_GATE_PCT percent (default 50; latency is noisier than
#      throughput) or MB/s dropping by more than it fails the script;
#      EFC_SERVE_GATE_PCT=0 disables.  Rows carry the recording
#      hardware (nproc + SIMD level) and foreign rows are skipped, same
#      as the throughput gate.
#   8. Fast-path gate + throughput smoke: `efcc --backend fastpath` must be
#      byte-identical to `--backend vm` on a fig9-style CSV corpus, then a
#      small fig9 benchmark run refreshes BENCH_throughput.json at the
#      repo root so the recorded numbers track HEAD.  The fresh numbers
#      are gated against the committed ones: any (pipeline, backend) row
#      dropping more than EFC_BENCH_GATE_PCT percent (default 20) fails
#      the script; EFC_BENCH_GATE_PCT=0 disables the gate (noisy shared
#      machines).  Rows carry the hardware that measured them (nproc +
#      detected SIMD level); rows recorded on different hardware are
#      skipped rather than compared — a repo benchmarked on an AVX-512
#      box must not fail CI on an SSE2 one.  Because the hot loops now
#      carry metrics folds and trace-enabled checks, this gate doubles as
#      the observability overhead gate: instrumentation that slows a
#      backend past the threshold fails here.
#   9. Codegen portability check: `efcc --emit-cpp` output (which embeds
#      the AVX2/AVX-512 nibble scanners under GCC target attributes) must
#      compile both with -mavx2 and with AVX disabled entirely.
#  10. Parallel executor smoke: an 8 MB CSV through `efcc --parallel 4`
#      must be byte-identical to the sequential run of the same file —
#      the chunk/speculate/replay path end to end at a realistic size.
#  11. Runtime-cache bench: cache-hit vs cache-miss request latency
#      (asserts internally that a simulated restart hits the on-disk
#      native artifact cache instead of re-invoking the host compiler).
#  12. Backend-equivalence certification: `efc-verify` proves VM bytecode,
#      fast-path tables/kernels/nibble encodings/wide tables/spec pairs
#      and the codegen classifier hash agree for every
#      fig9/fig10/fig11/fig13 pipeline; any refutation fails the script
#      (exit 1).  "unverified" states (budget exhaustion) pass — the fuzz
#      smoke above covers them probabilistically.  The same obligations
#      are unit-tested under `ctest -L certify` (mutation injection,
#      corpus replay), which already ran as part of tier-1.
#
# Usage: ./ci.sh [build-dir]     (default: build)
#===------------------------------------------------------------------------===#
set -euo pipefail
cd "$(dirname "$0")"
BUILD=${1:-build}

echo "== [1/12] tier-1 verify =="
cmake -B "$BUILD" -S .
cmake --build "$BUILD" -j
(cd "$BUILD" && ctest --output-on-failure -j)

echo "== [2/12] EFC_SIMD=scalar tier-1 (vector kernels forced off) =="
if [ "${EFC_SKIP_SCALAR:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_SCALAR=1)"
else
  (cd "$BUILD" && EFC_SIMD=scalar ctest --output-on-failure -j -L tier1)
fi

echo "== [3/12] EFC_VERIFY_IR=1 tier-1 (between-pass IR invariants) =="
if [ "${EFC_SKIP_VERIFYIR:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_VERIFYIR=1)"
else
  (cd "$BUILD" && EFC_VERIFY_IR=1 ctest --output-on-failure -j -L tier1)
fi

echo "== [4/12] ASan+UBSan tier-1 =="
if [ "${EFC_SKIP_ASAN:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_ASAN=1)"
else
  cmake -B "$BUILD-asan" -S . -DEFC_SANITIZE=ON
  cmake --build "$BUILD-asan" -j
  # The native backend dlopens uninstrumented artifacts; that direction
  # (clean .so into an ASan process) is supported, but don't let a stale
  # instrumented cache cross builds.
  (cd "$BUILD-asan" && EFC_CACHE_DIR=$(mktemp -d) \
     ctest --output-on-failure -j -L tier1)
fi

echo "== [5/12] TSan parallel + serve suites =="
if [ "${EFC_SKIP_TSAN:-0}" = "1" ]; then
  echo "skipped (EFC_SKIP_TSAN=1)"
else
  cmake -B "$BUILD-tsan" -S . -DEFC_SANITIZE=thread
  cmake --build "$BUILD-tsan" -j --target parallel_test --target serve_test
  (cd "$BUILD-tsan" && ctest --output-on-failure -j -L parallel)
  (cd "$BUILD-tsan" && ctest --output-on-failure -j -L serve)
fi

echo "== [6/12] efc-serve smoke test =="
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT
SOCK="$SCRATCH/efc.sock"
PATTERN='(?:(?:[^,\n]*,){1}(?<v>\d+),[^\n]*\n)*'
printf 'a,17,x\nb,99,y\nc,40,z\nd,63,w\n' > "$SCRATCH/rows.csv"

"$BUILD/tools/efc-serve" --socket "$SOCK" --shards 2 &
SERVER=$!
for _ in $(seq 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "server never bound $SOCK" >&2; exit 1; }

STREAMED=$("$BUILD/tools/efc-serve" --socket "$SOCK" --run smoke \
  --regex "$PATTERN" --agg max --format decimal \
  --file "$SCRATCH/rows.csv" --chunk 7)
"$BUILD/tools/efc-serve" --socket "$SOCK" --shutdown
wait "$SERVER"

ONESHOT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg max --format decimal \
  --run "$SCRATCH/rows.csv")
if [ "$STREAMED" != "$ONESHOT" ]; then
  echo "smoke test mismatch: streamed='$STREAMED' one-shot='$ONESHOT'" >&2
  exit 1
fi
echo "streamed 7-byte chunks == efcc --run: '$STREAMED'"

# Hardware identity for the benchmark gates below: committed rows
# recorded on a different machine are skipped, not compared.  The ISA
# ladder mirrors src/vm/Simd.cpp detection.
CUR_NPROC=$(nproc)
if grep -qw avx512f /proc/cpuinfo && grep -qw avx512bw /proc/cpuinfo \
    && grep -qw avx512vl /proc/cpuinfo; then CUR_ISA=avx512
elif grep -qw avx2 /proc/cpuinfo; then CUR_ISA=avx2
else CUR_ISA=sse2; fi

echo "== [7/12] serving-load smoke + latency gate =="
# 1000 concurrent sessions over 50 conns on one shard: serve_load exits
# nonzero on any frame loss or byte divergence from the sequential
# oracle, so reaching the gate at all certifies a correct run.
SERVE_GATE_PCT=${EFC_SERVE_GATE_PCT:-50}
cp BENCH_serve.json "$SCRATCH/serve.json" 2>/dev/null || true
"$BUILD/bench/serve_load" \
  --sessions "${EFC_SERVE_SESSIONS:-1000}" --conns 50 --shards 1 \
  --scenario serve_smoke --timeout-s 120 --json "$SCRATCH/serve.json"
if [ "$SERVE_GATE_PCT" != "0" ] && [ -f BENCH_serve.json ]; then
  awk -v pct="$SERVE_GATE_PCT" -v nproc="$CUR_NPROC" -v isa="$CUR_ISA" '
    function key(line) {
      match(line, /"scenario": "[^"]*"/)
      s = substr(line, RSTART + 13, RLENGTH - 14)
      match(line, /"shards": [0-9]+/)
      return s "/" substr(line, RSTART + 10, RLENGTH - 10) "-shard"
    }
    function num(line, field,  pat) {
      pat = "\"" field "\": [0-9.]+"
      if (match(line, pat))
        return substr(line, RSTART + length(field) + 4,
                      RLENGTH - length(field) - 4) + 0
      return 0
    }
    function isa_of(line) {
      if (match(line, /"isa": "[^"]*"/))
        return substr(line, RSTART + 8, RLENGTH - 9)
      return ""
    }
    function foreign(line,  i, n) {
      i = isa_of(line); n = num(line, "nproc")
      return (i != "" && i != isa) || (n != 0 && n != nproc)
    }
    NR == FNR {
      if (/"scenario"/) {
        if (foreign($0))
          printf "  %-24s skipped (recorded on %s/%d-core, this machine" \
                 " %s/%d-core)\n", key($0), isa_of($0), num($0, "nproc"), \
                 isa, nproc
        else {
          oldp99[key($0)] = num($0, "p99_ms")
          oldmb[key($0)] = num($0, "mb_per_s")
        }
      }
      next
    }
    /"scenario"/ {
      k = key($0)
      if (k in oldp99 && oldp99[k] > 0) {
        p99 = num($0, "p99_ms"); mb = num($0, "mb_per_s")
        rise = (p99 - oldp99[k]) / oldp99[k] * 100
        printf "  %-24s p99 %8.2f -> %8.2f ms (%+.1f%%)\n", k, oldp99[k], \
               p99, rise
        if (rise > pct) bad = bad "\n  " k " (p99 latency)"
        if (oldmb[k] > 0) {
          drop = (oldmb[k] - mb) / oldmb[k] * 100
          printf "  %-24s %8.2f -> %8.2f MB/s (%+.1f%%)\n", k, oldmb[k], \
                 mb, -drop
          if (drop > pct) bad = bad "\n  " k " (MB/s)"
        }
      }
    }
    END {
      if (bad != "") { printf "serving regression > %s%%:%s\n", pct, bad
                       exit 1 }
    }
  ' BENCH_serve.json "$SCRATCH/serve.json" || {
    echo "serving gate failed (override: EFC_SERVE_GATE_PCT=0 ./ci.sh," \
         "or a higher percentage for a known-noisy machine)" >&2
    exit 1
  }
fi
mv "$SCRATCH/serve.json" BENCH_serve.json

echo "== [8/12] fast-path divergence gate + throughput smoke =="
# Deterministic fig9-style CSV corpus, big enough to cross chunk and
# buffer-growth boundaries.
for i in $(seq 0 4999); do
  printf 'r%d,%d,x%d\n' "$i" $(( (i * 37 + 11) % 100000 )) "$i"
done > "$SCRATCH/corpus.csv"
for AGG in max min avg; do
  VM_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg "$AGG" \
    --format decimal --backend vm --run "$SCRATCH/corpus.csv")
  FP_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg "$AGG" \
    --format decimal --backend fastpath --run "$SCRATCH/corpus.csv")
  if [ "$VM_OUT" != "$FP_OUT" ]; then
    echo "fast path diverges from VM (agg=$AGG): vm='$VM_OUT'" \
         "fastpath='$FP_OUT'" >&2
    exit 1
  fi
done
echo "fastpath == vm on corpus.csv (max/min/avg)"
# Refresh the committed throughput record for a few pipelines at 1 MB.
# The fresh rows merge into a scratch copy first and are compared against
# the committed file per (pipeline, backend); only when the gate passes
# does the scratch copy replace BENCH_throughput.json, so a failed gate
# leaves the committed numbers untouched.
GATE_PCT=${EFC_BENCH_GATE_PCT:-20}
cp BENCH_throughput.json "$SCRATCH/throughput.json" 2>/dev/null || true
EFC_BENCH_MB=1 EFC_BENCH_PIPELINES=CSV-max,UTF8-lines,CC-id \
  EFC_BENCH_JSON="$SCRATCH/throughput.json" \
  "$BUILD/bench/fig9_pipelines" \
  --benchmark_filter='/(Fused|FusedFastPath)$' --benchmark_min_time=0.1s
# The committed rows carry the hardware that measured them; compare only
# rows recorded on a matching machine (same detected SIMD level, same
# logical core count — CUR_ISA/CUR_NPROC above) so runs on
# weaker/stronger boxes skip instead of tripping the gate.
if [ "$GATE_PCT" != "0" ] && [ -f BENCH_throughput.json ]; then
  awk -v pct="$GATE_PCT" -v nproc="$CUR_NPROC" -v isa="$CUR_ISA" '
    function key(line) {
      match(line, /"pipeline": "[^"]*"/)
      p = substr(line, RSTART + 13, RLENGTH - 14)
      match(line, /"backend": "[^"]*"/)
      b = substr(line, RSTART + 12, RLENGTH - 13)
      return p "/" b
    }
    function mbps(line) {
      match(line, /"mb_per_s": [0-9.]+/)
      return substr(line, RSTART + 12, RLENGTH - 12) + 0
    }
    function isa_of(line) {
      if (match(line, /"isa": "[^"]*"/))
        return substr(line, RSTART + 8, RLENGTH - 9)
      return ""
    }
    function nproc_of(line) {
      if (match(line, /"nproc": [0-9]+/))
        return substr(line, RSTART + 9, RLENGTH - 9) + 0
      return 0
    }
    # Rows predating hardware stamps (no isa/nproc fields) still gate.
    function foreign(line,  i, n) {
      i = isa_of(line); n = nproc_of(line)
      return (i != "" && i != isa) || (n != 0 && n != nproc)
    }
    NR == FNR {
      if (/"pipeline"/) {
        if (foreign($0))
          printf "  %-28s skipped (recorded on %s/%d-core, this machine" \
                 " %s/%d-core)\n", key($0), isa_of($0), nproc_of($0), \
                 isa, nproc
        else
          old[key($0)] = mbps($0)
      }
      next
    }
    /"pipeline"/ {
      k = key($0); cur = mbps($0)
      if (k in old && old[k] > 0) {
        drop = (old[k] - cur) / old[k] * 100
        printf "  %-28s %8.2f -> %8.2f MB/s (%+.1f%%)\n", k, old[k], cur, -drop
        if (drop > pct) bad = bad "\n  " k
      }
    }
    END {
      if (bad != "") { printf "throughput regression > %s%%:%s\n", pct, bad
                       exit 1 }
    }
  ' BENCH_throughput.json "$SCRATCH/throughput.json" || {
    echo "throughput gate failed (override: EFC_BENCH_GATE_PCT=0 ./ci.sh," \
         "or a higher percentage for a known-noisy machine)" >&2
    exit 1
  }
fi
mv "$SCRATCH/throughput.json" BENCH_throughput.json

echo "== [9/12] codegen portability (emitted C++ with and without AVX) =="
# The emitted translation unit embeds AVX2/AVX-512 nibble scanners under
# GCC target attributes plus a scalar fallback; it must build on a plain
# SSE2 toolchain configuration and under -mavx2 alike.
"$BUILD/tools/efcc" --regex "$PATTERN" --agg max --format decimal \
  --emit-cpp "$SCRATCH/emitted.cpp"
CXX_PORT=${CXX:-c++}
"$CXX_PORT" -std=c++17 -O2 -mavx2 -c "$SCRATCH/emitted.cpp" \
  -o "$SCRATCH/emitted_avx2.o"
"$CXX_PORT" -std=c++17 -O2 -mno-avx2 -mno-avx -c "$SCRATCH/emitted.cpp" \
  -o "$SCRATCH/emitted_noavx.o"
echo "emitted C++ compiles under -mavx2 and -mno-avx2 -mno-avx"

echo "== [10/12] parallel executor smoke (8 MB, 4 threads) =="
awk 'BEGIN { for (i = 0; i < 400000; i++)
  printf "row%d,%d,pad%d\n", i, (i * 37 + 11) % 1000000, i }' \
  > "$SCRATCH/par.csv"
SEQ_OUT=$("$BUILD/tools/efcc" --regex "$PATTERN" --agg max \
  --format decimal --run "$SCRATCH/par.csv")
PAR_OUT=$(EFC_PARALLEL_MIN_BYTES=1048576 "$BUILD/tools/efcc" \
  --regex "$PATTERN" --agg max --format decimal \
  --run "$SCRATCH/par.csv" --parallel 4)
if [ "$SEQ_OUT" != "$PAR_OUT" ]; then
  echo "parallel diverges from sequential: seq='$SEQ_OUT'" \
       "par='$PAR_OUT'" >&2
  exit 1
fi
echo "efcc --parallel 4 == sequential on 8 MB CSV: '$PAR_OUT'"

echo "== [11/12] cache-hit vs cache-miss latency =="
"$BUILD/bench/runtime_cache"

echo "== [12/12] backend-equivalence certification =="
# efc-verify compiles all 17 pipelines through the pass manager and also
# prints the per-pass artifact-cache stats line (hits/lookups per pass).
"$BUILD/tools/efc-verify" --quiet

echo "== ci.sh: all green =="
