//===- examples/comprehension.cpp - Authoring with the §5.1 frontend ------===//
//
// Writes a custom effectful comprehension with the imperative EDSL (the
// paper's Transducer<I,O> interface): a run-length decoder for a toy
// format where a digit means "repeat the next character that many times".
// Finite exploration migrates the boolean "expectChar" flag into control
// states automatically.
//
//===----------------------------------------------------------------------===//

#include "bst/BstPrint.h"
#include "bst/Interp.h"
#include "frontends/comprehension/Comprehension.h"
#include "stdlib/Values.h"

#include <cstdio>

using namespace efc;
using namespace efc::fe;

int main() {
  TermContext Ctx;
  Solver S(Ctx);

  ComprehensionBuilder B(Ctx, Ctx.charTy(), Ctx.charTy());
  TermRef Count = B.field("count", Ctx.intTy(), Value::bv(32, 0));
  TermRef Expect = B.field("expectChar", Ctx.boolTy(), Value::boolV(false));
  TermRef X = B.input();

  // update(x):
  //   if (!expectChar) {
  //     if ('1' <= x && x <= '9') { count = x - '0'; expectChar = true; }
  //     else throw;
  //   } else {
  //     emit x `count` times is not expressible char-by-char, so emit up
  //     to 9 copies guarded by count comparisons; expectChar = false.
  //   }
  std::vector<StmtPtr> Emits;
  for (unsigned K = 1; K <= 9; ++K)
    Emits.push_back(
        ifS(Ctx.mkUle(Ctx.bvConst(32, K), Count), emit(X)));
  Emits.push_back(set(Expect, Ctx.falseConst()));

  B.update(ifS(
      Ctx.mkNot(Expect),
      block({ifS(Ctx.mkInRange(X, '1', '9'),
                 block({set(Count, Ctx.mkSub(Ctx.mkZExt(X, 32),
                                             Ctx.bvConst(32, '0'))),
                        set(Expect, Ctx.trueConst())}),
                 reject())}),
      block(std::move(Emits))));
  B.finish(ifS(Expect, reject())); // must not end mid-pair

  Bst A = B.build(S);
  printf("run-length decoder: %u control states after finite "
         "exploration\n\n%s\n",
         A.numStates(), bstToString(A).c_str());

  auto Out = runBst(A, lib::valuesFromAscii("3a1b2c"));
  std::string Decoded;
  for (const Value &V : *Out)
    Decoded.push_back(char(V.bits()));
  printf("\"3a1b2c\" decodes to \"%s\"\n", Decoded.c_str());

  printf("\"3a1\" (dangling count) %s\n",
         runBst(A, lib::valuesFromAscii("3a1")) ? "accepted?!"
                                                : "rejected, as it should");
  return 0;
}
