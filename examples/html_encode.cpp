//===- examples/html_encode.cpp - Modular anti-XSS encoding (§6.1) --------===//
//
// The paper's §6.1 case study: write surrogate repair (Rep) and HTML
// encoding (HtmlEncode) modularly, fuse them, and get a single-pass
// encoder equivalent to the hand-fused AntiXssEncoder.HtmlEncode.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Reference.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"

#include <cstdio>

using namespace efc;

int main() {
  TermContext Ctx;
  Solver S(Ctx);

  Bst Rep = lib::makeRep(Ctx);
  Bst Html = lib::makeHtmlEncode(Ctx);

  FusionStats FStats;
  Bst Fused = fuse(Rep, Html, S, {}, &FStats);
  RbbeStats RStats;
  Bst Clean = eliminateUnreachableBranches(Fused, S, {}, &RStats);
  printf("Rep ⊗ HtmlEncode: %u states, %u branches "
         "(%u pruned in fusion, %u removed by RBBE)\n\n",
         Clean.numStates(), Clean.countBranches(), FStats.BranchesPruned,
         RStats.BranchesRemoved);

  // A string with markup, CJK, an emoji (valid surrogate pair) and a
  // *misplaced* surrogate that Rep repairs to U+FFFD.
  std::u16string Input = u"<b>caf\x00E9</b> \x4E2D\x6587 \xD83D\xDE00 "
                         u"bad:\xD800!";
  auto Out = runBst(Clean, lib::valuesFromChars(Input));
  std::u16string Encoded = lib::charsFromValues(*Out);

  // Compare against the hand-fused reference.
  std::u16string Expected = ref::antiXssHtmlEncode(Input);
  printf("fused output:     ");
  for (char16_t C : Encoded)
    putchar(C < 0x80 ? char(C) : '?');
  printf("\nhand-fused match: %s\n",
         Encoded == Expected ? "yes" : "NO (bug!)");
  return 0;
}
