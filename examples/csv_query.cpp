//===- examples/csv_query.cpp - Regex comprehensions over CSV -------------===//
//
// The paper's CSV scenario end to end: a five-stage pipeline
//
//   UTF-8 decode ⊗ regex(column 5 as int) ⊗ max ⊗ decimal format ⊗
//   UTF-8 encode
//
// declared modularly, fused into one byte-to-byte transducer, and run
// over a synthetic business-owners dataset (the SBO-employees pipeline of
// Figure 9).
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "data/Datasets.h"
#include "frontends/regex/RegexFrontend.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "vm/Vm.h"

#include <cstdio>

using namespace efc;

int main() {
  TermContext Ctx;
  Solver S(Ctx);

  // The modular stages.
  Bst Decode = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);
  fe::RegexBstResult Re = fe::buildRegexBst(
      Ctx, "(?:(?:[^,\\n]*,){5}(?<employees>\\d+),[^\\n]*\\n)*",
      {{"employees", &ToInt}});
  if (!Re.Result) {
    fprintf(stderr, "regex error: %s\n", Re.Error.c_str());
    return 1;
  }
  Bst Max = lib::makeMax(Ctx);
  Bst Format = lib::makeIntToDecimal(Ctx);
  Bst Encode = lib::makeUtf8Encode(Ctx);

  // Fuse the pipeline and clean it up.
  FusionStats FStats;
  Bst Fused =
      fuseChain({&Decode, &*Re.Result, &Max, &Format, &Encode}, S, {},
                &FStats);
  RbbeStats RStats;
  RbbeOptions ROpts;
  ROpts.ConflictBudget = 0; // cheap decision procedures only
  Bst Clean = eliminateUnreachableBranches(Fused, S, ROpts, &RStats);
  printf("pipeline fused to %u states (%u branches; RBBE removed %u)\n",
         Clean.numStates(), Clean.countBranches(), RStats.BranchesRemoved);

  // A small synthetic dataset and a run through the VM.
  std::string Csv = data::makeSboCsv(2026, 4096, /*IntColumn=*/5);
  auto T = CompiledTransducer::compile(Clean);
  std::vector<uint64_t> In;
  for (unsigned char C : Csv)
    In.push_back(C);
  auto Out = T->run(In);
  if (!Out) {
    fprintf(stderr, "input rejected\n");
    return 1;
  }
  std::string Answer;
  for (uint64_t B : *Out)
    Answer.push_back(char(B));
  printf("max employees over %zu bytes of CSV: %s\n", Csv.size(),
         Answer.c_str());
  return 0;
}
