//===- examples/quickstart.cpp - The paper's §1 walkthrough ---------------===//
//
// Quickstart: build the paper's two introductory transducers (Utf8Decode
// and ToInt), fuse them, clean the result with RBBE, and run it three
// ways — reference interpreter, VM, and generated C++ (printed).
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "bst/BstPrint.h"
#include "bst/Interp.h"
#include "codegen/CppCodeGen.h"
#include "fusion/Fusion.h"
#include "rbbe/Rbbe.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "vm/Vm.h"

#include <cstdio>

using namespace efc;

int main() {
  TermContext Ctx;

  // 1. Two effectful comprehensions from the standard library: a UTF-8
  //    decoder (stateful: multibyte sequences) and a decimal parser
  //    (stateful: accumulator + definedness).
  Bst Utf8Decode = lib::makeUtf8Decode2(Ctx);
  Bst ToInt = lib::makeToInt(Ctx);

  // 2. Fuse them: one transducer equivalent to ToInt ∘ Utf8Decode.
  Solver S(Ctx);
  FusionStats FStats;
  Bst Fused = fuse(Utf8Decode, ToInt, S, {}, &FStats);
  printf("fused: %u product states (%llu solver checks)\n",
         Fused.numStates(), (unsigned long long)FStats.SolverChecks);

  // 3. RBBE proves the multibyte path unreachable (no multibyte character
  //    is a digit) and shrinks the result to ToInt itself — the paper's
  //    §1 punchline.
  RbbeStats RStats;
  Bst Clean = eliminateUnreachableBranches(Fused, S, {}, &RStats);
  printf("after RBBE: %u states, %u branches removed\n\n",
         Clean.numStates(), RStats.BranchesRemoved);
  printf("%s\n", bstToString(Clean).c_str());

  // 4. Run it: interpreter ...
  auto Out = runBst(Clean, lib::valuesFromBytes("20260705"));
  printf("interpreter: \"20260705\" -> %llu\n",
         (unsigned long long)(*Out)[0].bits());

  // ... the VM ...
  auto Compiled = CompiledTransducer::compile(Clean);
  std::vector<uint64_t> In = {'4', '2'};
  auto VmOut = Compiled->run(In);
  printf("vm:          \"42\"       -> %llu\n",
         (unsigned long long)(*VmOut)[0]);

  // ... and generated C++ (the paper's §6 backend).
  CodeGenOptions Opts;
  Opts.FunctionName = "utf8_to_int";
  printf("\n--- generated C++ ---\n%s", generateCpp(Clean, Opts).c_str());
  return 0;
}
