//===- examples/xpath_query.cpp - XPath comprehensions over XML -----------===//
//
// The paper's Example 5.3: st:int(/cities/city/population), extended to
// the full MONDIAL-style pipeline — parse XML streamingly, extract every
// matched population as an int, take the maximum, and format it.
//
//===----------------------------------------------------------------------===//

#include "bst/Interp.h"
#include "data/Datasets.h"
#include "frontends/xpath/XPathFrontend.h"
#include "fusion/Fusion.h"
#include "stdlib/Transducers.h"
#include "stdlib/Values.h"
#include "vm/Vm.h"

#include <cstdio>

using namespace efc;

int main() {
  TermContext Ctx;
  Solver S(Ctx);

  // The paper's example document.
  const char *Xml = "<cities>"
                    "<city name='Roslyn'>"
                    "<timezone>PST</timezone>"
                    "<population>893</population>"
                    "</city>"
                    "<city name='Santa Barbara'>"
                    "<population>88410</population>"
                    "</city>"
                    "</cities>";

  Bst ToInt = lib::makeToInt(Ctx);
  fe::XPathBstResult Q =
      fe::buildXPathBst(Ctx, "/cities/city/population", ToInt);
  if (!Q.Result) {
    fprintf(stderr, "xpath error: %s\n", Q.Error.c_str());
    return 1;
  }
  printf("matcher has %u control states\n", Q.Result->numStates());

  // Direct run: the populations stream out as ints.
  auto Pops = runBst(*Q.Result, lib::valuesFromAscii(Xml));
  printf("populations:");
  for (const Value &V : *Pops)
    printf(" %llu", (unsigned long long)V.bits());
  printf("\n");

  // Full fused pipeline over a larger synthetic MONDIAL document.
  Bst Max = lib::makeMax(Ctx);
  Bst Fmt = lib::makeIntToDecimalLines(Ctx);
  Bst Fused = fuseChain({&*Q.Result, &Max, &Fmt}, S);
  auto T = CompiledTransducer::compile(Fused);

  std::string Doc =
      "<cities>" + std::string(Xml).substr(8); // reuse the example
  std::vector<uint64_t> In;
  for (unsigned char C : Doc)
    In.push_back(C);
  auto Out = T->run(In);
  std::string Answer;
  for (uint64_t C : *Out)
    Answer.push_back(char(C));
  printf("largest population: %s", Answer.c_str());
  return 0;
}
